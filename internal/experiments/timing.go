package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// TimingBySizeResult reproduces Fig. 12(a): mean summarization time per
// trajectory bucketed by |T| (the symbolic trajectory's landmark count).
type TimingBySizeResult struct {
	// Buckets are the |T| bucket upper bounds.
	Buckets []int
	// MeanMs[i] is the mean per-trajectory time for bucket i.
	MeanMs []float64
	// Count[i] is the number of trajectories in bucket i.
	Count []int
	// K is the partition size used.
	K int
}

// TimingByTrajectorySize summarizes the test set at fixed k and buckets
// wall-clock time by trajectory size (Fig. 12a).
func TimingByTrajectorySize(w *World, k int) (*TimingBySizeResult, error) {
	if k <= 0 {
		k = 3
	}
	type obs struct {
		size int
		ms   float64
	}
	var all []obs
	for _, trip := range w.Test {
		sym, err := w.Summarizer.Calibrate(trip.Raw)
		if err != nil {
			continue
		}
		start := time.Now()
		if _, err := w.Summarizer.SummarizeK(trip.Raw, k); err != nil {
			continue
		}
		all = append(all, obs{size: sym.Len(), ms: float64(time.Since(start).Microseconds()) / 1000})
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("experiments: nothing to time")
	}
	sort.Slice(all, func(i, j int) bool { return all[i].size < all[j].size })
	// Four equal-population buckets labelled by their max |T|.
	res := &TimingBySizeResult{K: k}
	nb := 4
	for b := 0; b < nb; b++ {
		lo, hi := b*len(all)/nb, (b+1)*len(all)/nb
		if lo >= hi {
			continue
		}
		var sum float64
		for _, o := range all[lo:hi] {
			sum += o.ms
		}
		res.Buckets = append(res.Buckets, all[hi-1].size)
		res.MeanMs = append(res.MeanMs, sum/float64(hi-lo))
		res.Count = append(res.Count, hi-lo)
	}
	return res, nil
}

// Format writes the Fig. 12(a) series.
func (r *TimingBySizeResult) Format(out io.Writer) {
	fmt.Fprintf(out, "Summarization time vs |T| (Fig. 12a), k=%d\n", r.K)
	for i := range r.Buckets {
		fmt.Fprintf(out, "  |T| <= %4d  %8.2f ms  (n=%d)\n", r.Buckets[i], r.MeanMs[i], r.Count[i])
	}
}

// TimingByKResult reproduces Fig. 12(b): mean summarization time per
// trajectory as k varies.
type TimingByKResult struct {
	Ks     []int
	MeanMs []float64
	Trips  int
}

// TimingByPartitionSize times summarization of up to n test trips for each
// k (Fig. 12b).
func TimingByPartitionSize(w *World, ks []int, n int) (*TimingByKResult, error) {
	if len(ks) == 0 {
		ks = []int{1, 2, 3, 4, 5, 6, 7}
	}
	trips := sampleTrips(w.Test, n)
	res := &TimingByKResult{Ks: ks, Trips: len(trips)}
	for _, k := range ks {
		start := time.Now()
		var ok int
		for _, trip := range trips {
			if _, err := w.Summarizer.SummarizeK(trip.Raw, k); err == nil {
				ok++
			}
		}
		elapsed := float64(time.Since(start).Microseconds()) / 1000
		if ok == 0 {
			ok = 1
		}
		res.MeanMs = append(res.MeanMs, elapsed/float64(ok))
	}
	return res, nil
}

// Format writes the Fig. 12(b) series.
func (r *TimingByKResult) Format(out io.Writer) {
	fmt.Fprintf(out, "Summarization time vs k (Fig. 12b) — %d trips per point\n", r.Trips)
	for i, k := range r.Ks {
		fmt.Fprintf(out, "  k=%d  %8.2f ms\n", k, r.MeanMs[i])
	}
}
