package experiments

import (
	"fmt"
	"io"

	"stmaker/internal/feature"
	"stmaker/internal/simulate"
	"stmaker/internal/summarize"
)

// FF is the paper's feature frequency: the fraction of summaries that
// mention a feature (§VII-C.2).
//
//	FF_f = #summaries containing f / #total summaries
func FF(summaries []*summarize.Summary, key string) float64 {
	if len(summaries) == 0 {
		return 0
	}
	var n int
	for _, s := range summaries {
		if s.MentionsFeature(key) {
			n++
		}
	}
	return float64(n) / float64(len(summaries))
}

// TimeBucketsResult reproduces Fig. 8: feature frequency of every feature
// across the twelve two-hour buckets of the day.
type TimeBucketsResult struct {
	// Keys are the feature keys (columns).
	Keys []string
	// FF[b][j] is the FF of feature Keys[j] in bucket b (hours 2b..2b+2).
	FF [12][]float64
	// Count[b] is the number of summaries in bucket b.
	Count [12]int
}

// FeatureFrequencyByTime summarizes the whole test set and groups the
// summaries into twelve two-hour categories by trip start time (Fig. 8).
func FeatureFrequencyByTime(w *World) (*TimeBucketsResult, error) {
	keys := w.FeatureKeys()
	byBucket := make([][]*summarize.Summary, 12)
	for _, trip := range w.Test {
		sum, err := w.Summarizer.Summarize(trip.Raw)
		if err != nil {
			continue
		}
		b := trip.Start.Hour() / 2
		byBucket[b] = append(byBucket[b], sum)
	}
	res := &TimeBucketsResult{Keys: keys}
	for b := 0; b < 12; b++ {
		res.Count[b] = len(byBucket[b])
		res.FF[b] = make([]float64, len(keys))
		for j, key := range keys {
			res.FF[b][j] = FF(byBucket[b], key)
		}
	}
	return res, nil
}

// DaytimeVsNight returns the mean FF of the given feature over the daytime
// buckets (6:00–18:00) and the night buckets, the headline contrast of
// Fig. 8.
func (r *TimeBucketsResult) DaytimeVsNight(key string) (day, night float64) {
	j := indexOf(r.Keys, key)
	if j < 0 {
		return 0, 0
	}
	var daySum, nightSum float64
	var dayN, nightN int
	for b := 0; b < 12; b++ {
		h := b * 2
		if h >= 6 && h < 18 {
			daySum += r.FF[b][j]
			dayN++
		} else {
			nightSum += r.FF[b][j]
			nightN++
		}
	}
	return daySum / float64(dayN), nightSum / float64(nightN)
}

// Format writes the Fig. 8 series: one row per two-hour bucket.
func (r *TimeBucketsResult) Format(out io.Writer) {
	fmt.Fprintf(out, "Feature frequency by time of day (Fig. 8)\n")
	fmt.Fprintf(out, "  %-13s %5s", "bucket", "n")
	for _, k := range r.Keys {
		fmt.Fprintf(out, " %7s", k)
	}
	fmt.Fprintln(out)
	for b := 0; b < 12; b++ {
		fmt.Fprintf(out, "  %02d:00-%02d:00   %5d", b*2, b*2+2, r.Count[b])
		for j := range r.Keys {
			fmt.Fprintf(out, " %7.3f", r.FF[b][j])
		}
		fmt.Fprintln(out)
	}
}

// LandmarkUsageResult reproduces Fig. 9: how often each landmark
// significance decile appears in summaries.
type LandmarkUsageResult struct {
	// Usage[d] is the fraction of summary landmark mentions that fall in
	// significance decile d (0 = top 10%).
	Usage [10]float64
	// Mentions is the total number of landmark mentions counted.
	Mentions int
}

// LandmarkUsageBySignificance summarizes the test set, collects the
// landmarks mentioned as partition endpoints, and buckets them by
// significance decile of the full landmark set (Fig. 9).
func LandmarkUsageBySignificance(w *World) (*LandmarkUsageResult, error) {
	set := w.City.Landmarks
	ranked := set.RankBySignificance()
	decile := make(map[int]int, len(ranked))
	for pos, id := range ranked {
		d := pos * 10 / len(ranked)
		if d > 9 {
			d = 9
		}
		decile[id] = d
	}
	res := &LandmarkUsageResult{}
	for _, trip := range w.Test {
		sum, err := w.Summarizer.Summarize(trip.Raw)
		if err != nil {
			continue
		}
		for _, id := range sum.LandmarkIDs() {
			res.Usage[decile[id]]++
			res.Mentions++
		}
	}
	if res.Mentions > 0 {
		for d := range res.Usage {
			res.Usage[d] /= float64(res.Mentions)
		}
	}
	return res, nil
}

// Format writes the Fig. 9 series.
func (r *LandmarkUsageResult) Format(out io.Writer) {
	fmt.Fprintf(out, "Landmark usage by significance group (Fig. 9) — %d mentions\n", r.Mentions)
	for d := 0; d < 10; d++ {
		fmt.Fprintf(out, "  top %3d-%3d%%  %6.1f%%\n", d*10, d*10+10, r.Usage[d]*100)
	}
}

// SweepResult holds FF per feature for each setting of a swept parameter
// (Fig. 10a sweeps the speed weight; Fig. 10b sweeps the partition size).
type SweepResult struct {
	// Param names the swept parameter.
	Param string
	// Settings are the parameter values (rows).
	Settings []float64
	// Keys are the feature keys (columns).
	Keys []string
	// FF[i][j] is the FF of Keys[j] at Settings[i].
	FF [][]float64
}

// FeatureWeightSweep reproduces Fig. 10(a): it re-summarizes n random test
// trips with the weight of the Spe feature swept over the given values
// (others staying at 1) and reports every feature's FF.
func FeatureWeightSweep(w *World, weights []float64, n int) (*SweepResult, error) {
	if len(weights) == 0 {
		weights = []float64{0.5, 1, 2, 3, 4}
	}
	trips := sampleTrips(w.Test, n)
	keys := w.FeatureKeys()
	res := &SweepResult{Param: "w(Spe)", Settings: weights, Keys: keys}
	for _, wt := range weights {
		s := w.Summarizer.WithWeights(feature.Weights{feature.KeySpeed: wt})
		sums := make([]*summarize.Summary, 0, len(trips))
		for _, trip := range trips {
			if sum, err := s.Summarize(trip.Raw); err == nil {
				sums = append(sums, sum)
			}
		}
		row := make([]float64, len(keys))
		for j, key := range keys {
			row[j] = FF(sums, key)
		}
		res.FF = append(res.FF, row)
	}
	return res, nil
}

// PartitionSizeSweep reproduces Fig. 10(b): FF of every feature as the
// partition count k sweeps over the given values.
func PartitionSizeSweep(w *World, ks []int, n int) (*SweepResult, error) {
	if len(ks) == 0 {
		ks = []int{1, 2, 3, 4, 5, 6, 7}
	}
	trips := sampleTrips(w.Test, n)
	keys := w.FeatureKeys()
	res := &SweepResult{Param: "k", Keys: keys}
	for _, k := range ks {
		res.Settings = append(res.Settings, float64(k))
		sums := make([]*summarize.Summary, 0, len(trips))
		for _, trip := range trips {
			if sum, err := w.Summarizer.SummarizeK(trip.Raw, k); err == nil {
				sums = append(sums, sum)
			}
		}
		row := make([]float64, len(keys))
		for j, key := range keys {
			row[j] = FF(sums, key)
		}
		res.FF = append(res.FF, row)
	}
	return res, nil
}

// Format writes the sweep as a table: one row per setting.
func (r *SweepResult) Format(out io.Writer) {
	fmt.Fprintf(out, "Effect of %s (Fig. 10)\n", r.Param)
	fmt.Fprintf(out, "  %8s", r.Param)
	for _, k := range r.Keys {
		fmt.Fprintf(out, " %7s", k)
	}
	fmt.Fprintln(out)
	for i, s := range r.Settings {
		fmt.Fprintf(out, "  %8.2g", s)
		for j := range r.Keys {
			fmt.Fprintf(out, " %7.3f", r.FF[i][j])
		}
		fmt.Fprintln(out)
	}
}

// ColumnFF returns the FF series of one feature across the sweep settings.
func (r *SweepResult) ColumnFF(key string) []float64 {
	j := indexOf(r.Keys, key)
	if j < 0 {
		return nil
	}
	out := make([]float64, len(r.FF))
	for i := range r.FF {
		out[i] = r.FF[i][j]
	}
	return out
}

// sampleTrips returns the first n trips (the fleet order is already
// random and seed-stable).
func sampleTrips(trips []*simulate.Trip, n int) []*simulate.Trip {
	if n <= 0 || n > len(trips) {
		n = len(trips)
	}
	return trips[:n]
}

func indexOf(keys []string, key string) int {
	for i, k := range keys {
		if k == key {
			return i
		}
	}
	return -1
}
