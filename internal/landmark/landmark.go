// Package landmark builds and queries the landmark dataset STMaker relies
// on (Def. 2): stable geographic points that are independent of any
// trajectory. Following the paper's experiment setup (§VII-A), landmarks
// come from two sources — turning points of the road network, and the
// centres of DBSCAN clusters of a raw POI dataset — and each landmark
// carries a significance score l.s inferred with a HITS-like algorithm
// over traveller visits (§IV-B).
package landmark

import (
	"fmt"
	"sort"

	"stmaker/internal/dbscan"
	"stmaker/internal/geo"
	"stmaker/internal/hits"
	"stmaker/internal/spatial"
)

// Kind distinguishes the two landmark sources.
type Kind int

const (
	// KindTurningPoint is a sharp turn of the road network.
	KindTurningPoint Kind = iota
	// KindPOI is the centre of a POI cluster.
	KindPOI
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == KindPOI {
		return "poi"
	}
	return "turning-point"
}

// Landmark is a stable semantic location (Def. 2).
type Landmark struct {
	ID   int
	Name string
	Pt   geo.Point
	Kind Kind
	// Significance is l.s, the familiarity of the landmark to average
	// people, inferred by the HITS-like algorithm. Scores are relative;
	// the set normalizes them to [0,1] with the maximum at 1.
	Significance float64
}

// POI is one raw point of interest prior to clustering.
type POI struct {
	Name string
	Pt   geo.Point
}

// Set is an immutable collection of landmarks with spatial indexing.
type Set struct {
	landmarks []Landmark
	ix        *spatial.Index
}

// NewSet builds a set from prepared landmarks, assigning sequential IDs
// (any existing IDs are overwritten).
func NewSet(landmarks []Landmark) *Set {
	s := &Set{landmarks: make([]Landmark, len(landmarks))}
	copy(s.landmarks, landmarks)
	refLat := 0.0
	if len(landmarks) > 0 {
		refLat = landmarks[0].Pt.Lat
	}
	s.ix = spatial.NewIndex(300, refLat)
	for i := range s.landmarks {
		s.landmarks[i].ID = i
		s.ix.Insert(i, s.landmarks[i].Pt)
	}
	return s
}

// BuildOptions configures Build.
type BuildOptions struct {
	// ClusterEpsMeters is the DBSCAN radius for POI clustering
	// (default 150 m).
	ClusterEpsMeters float64
	// ClusterMinPts is the DBSCAN density threshold (default 3).
	ClusterMinPts int
}

func (o BuildOptions) withDefaults() BuildOptions {
	if o.ClusterEpsMeters <= 0 {
		o.ClusterEpsMeters = 150
	}
	if o.ClusterMinPts <= 0 {
		o.ClusterMinPts = 3
	}
	return o
}

// Build constructs the landmark dataset from its two sources. POIs are
// clustered with DBSCAN and each cluster contributes its geometric centre,
// named after the POI nearest to that centre; noise POIs are dropped.
// Turning points are added as-is.
func Build(turningPoints []Landmark, pois []POI, opts BuildOptions) *Set {
	opts = opts.withDefaults()
	all := make([]Landmark, 0, len(turningPoints))
	for _, tp := range turningPoints {
		tp.Kind = KindTurningPoint
		if tp.Name == "" {
			tp.Name = fmt.Sprintf("turning point %d", len(all))
		}
		all = append(all, tp)
	}

	pts := make([]geo.Point, len(pois))
	for i, p := range pois {
		pts[i] = p.Pt
	}
	res := dbscan.Cluster(pts, opts.ClusterEpsMeters, opts.ClusterMinPts)
	centres := dbscan.Centroids(pts, res)
	for c, centre := range centres {
		// Name the cluster after its POI closest to the centre.
		bestName := ""
		bestD := -1.0
		for i, lbl := range res.Labels {
			if lbl != c {
				continue
			}
			d := geo.Distance(pois[i].Pt, centre)
			if bestD < 0 || d < bestD {
				bestD, bestName = d, pois[i].Name
			}
		}
		if bestName == "" {
			bestName = fmt.Sprintf("poi cluster %d", c)
		}
		all = append(all, Landmark{Name: bestName, Pt: centre, Kind: KindPOI})
	}
	return NewSet(all)
}

// Len returns the number of landmarks.
func (s *Set) Len() int { return len(s.landmarks) }

// Get returns the landmark with the given id.
func (s *Set) Get(id int) Landmark { return s.landmarks[id] }

// All returns the landmark slice. Callers must not mutate it.
func (s *Set) All() []Landmark { return s.landmarks }

// Nearest returns the landmark closest to p within maxDist metres.
func (s *Set) Nearest(p geo.Point, maxDist float64) (Landmark, bool) {
	r, ok := s.ix.Nearest(p, maxDist)
	if !ok {
		return Landmark{}, false
	}
	return s.landmarks[r.ID], true
}

// Within returns the landmarks within radius metres of p, nearest first.
func (s *Set) Within(p geo.Point, radius float64) []Landmark {
	hits := s.ix.Within(p, radius)
	out := make([]Landmark, len(hits))
	for i, h := range hits {
		out[i] = s.landmarks[h.ID]
	}
	return out
}

// InferSignificance runs the HITS-like inference (§IV-B) over the given
// traveller→landmark visits and stores the resulting scores, rescaled so
// the most significant landmark has score 1.
func (s *Set) InferSignificance(numTravellers int, visits []hits.Visit, opts hits.Options) {
	scores := hits.Run(numTravellers, len(s.landmarks), visits, opts)
	maxScore := 0.0
	for _, v := range scores.LandmarkHub {
		if v > maxScore {
			maxScore = v
		}
	}
	if maxScore == 0 { //lint:allow floateq -- division-by-zero guard: only exact zero is unsafe
		return
	}
	for i := range s.landmarks {
		s.landmarks[i].Significance = scores.LandmarkHub[i] / maxScore
	}
}

// SetSignificance overwrites the significance of landmark id.
func (s *Set) SetSignificance(id int, sig float64) {
	s.landmarks[id].Significance = sig
}

// RankBySignificance returns all landmark ids sorted by descending
// significance (ties broken by id for determinism).
func (s *Set) RankBySignificance() []int {
	ids := make([]int, len(s.landmarks))
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		la, lb := s.landmarks[ids[a]], s.landmarks[ids[b]]
		if la.Significance != lb.Significance { //lint:allow floateq -- sort comparator: exact tie-break on equal keys is intended
			return la.Significance > lb.Significance
		}
		return ids[a] < ids[b]
	})
	return ids
}
