package landmark

import (
	"math/rand"
	"testing"

	"stmaker/internal/geo"
	"stmaker/internal/hits"
)

var base = geo.Point{Lat: 39.9, Lng: 116.4}

func TestBuildClustersPOIs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tp := []Landmark{
		{Name: "", Pt: base},
		{Name: "corner", Pt: geo.Destination(base, 90, 1000)},
	}
	var pois []POI
	// Cluster A around 2km east: 10 POIs.
	ca := geo.Destination(base, 90, 2000)
	for i := 0; i < 10; i++ {
		pois = append(pois, POI{Name: "mall", Pt: geo.Destination(ca, rng.Float64()*360, rng.Float64()*50)})
	}
	// Cluster B around 2km north: 8 POIs.
	cb := geo.Destination(base, 0, 2000)
	for i := 0; i < 8; i++ {
		pois = append(pois, POI{Name: "park", Pt: geo.Destination(cb, rng.Float64()*360, rng.Float64()*50)})
	}
	// A lone noise POI far away.
	pois = append(pois, POI{Name: "lonely", Pt: geo.Destination(base, 180, 9000)})

	s := Build(tp, pois, BuildOptions{})
	if s.Len() != 4 { // 2 turning points + 2 clusters, noise dropped
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	// IDs are sequential and stable.
	for i := 0; i < s.Len(); i++ {
		if s.Get(i).ID != i {
			t.Fatalf("id mismatch at %d", i)
		}
	}
	// Unnamed turning point gets a generated name.
	if s.Get(0).Name == "" {
		t.Error("turning point name not generated")
	}
	if s.Get(0).Kind != KindTurningPoint {
		t.Error("turning point kind wrong")
	}
	// Cluster centres are near their blob centres and named after members.
	foundMall, foundPark := false, false
	for _, l := range s.All() {
		if l.Kind != KindPOI {
			continue
		}
		switch l.Name {
		case "mall":
			foundMall = geo.Distance(l.Pt, ca) < 60
		case "park":
			foundPark = geo.Distance(l.Pt, cb) < 60
		}
	}
	if !foundMall || !foundPark {
		t.Fatalf("cluster centres missing: mall=%v park=%v", foundMall, foundPark)
	}
}

func TestNearestAndWithin(t *testing.T) {
	s := NewSet([]Landmark{
		{Name: "a", Pt: base},
		{Name: "b", Pt: geo.Destination(base, 90, 400)},
		{Name: "c", Pt: geo.Destination(base, 90, 1200)},
	})
	l, ok := s.Nearest(geo.Destination(base, 90, 350), 500)
	if !ok || l.Name != "b" {
		t.Fatalf("Nearest = %+v ok=%v", l, ok)
	}
	if _, ok := s.Nearest(geo.Destination(base, 0, 5000), 100); ok {
		t.Fatal("Nearest should miss far points")
	}
	within := s.Within(base, 500)
	if len(within) != 2 || within[0].Name != "a" || within[1].Name != "b" {
		t.Fatalf("Within = %+v", within)
	}
}

func TestInferSignificance(t *testing.T) {
	s := NewSet([]Landmark{
		{Name: "popular", Pt: base},
		{Name: "quiet", Pt: geo.Destination(base, 90, 500)},
	})
	var visits []hits.Visit
	for tr := 0; tr < 10; tr++ {
		visits = append(visits, hits.Visit{Traveller: tr, Landmark: 0})
	}
	visits = append(visits, hits.Visit{Traveller: 0, Landmark: 1})
	s.InferSignificance(10, visits, hits.Options{})
	if s.Get(0).Significance != 1 {
		t.Fatalf("max significance should be rescaled to 1, got %v", s.Get(0).Significance)
	}
	if s.Get(1).Significance >= s.Get(0).Significance {
		t.Fatalf("quiet landmark should rank below popular")
	}
	ranked := s.RankBySignificance()
	if ranked[0] != 0 || ranked[1] != 1 {
		t.Fatalf("RankBySignificance = %v", ranked)
	}
}

func TestInferSignificanceNoVisits(t *testing.T) {
	s := NewSet([]Landmark{{Name: "a", Pt: base}})
	s.SetSignificance(0, 0.4)
	s.InferSignificance(5, nil, hits.Options{})
	if s.Get(0).Significance != 0.4 {
		t.Fatalf("zero-visit inference should leave scores untouched, got %v", s.Get(0).Significance)
	}
}

func TestSetSignificanceAndRankTies(t *testing.T) {
	s := NewSet([]Landmark{
		{Name: "a", Pt: base},
		{Name: "b", Pt: geo.Destination(base, 90, 100)},
		{Name: "c", Pt: geo.Destination(base, 90, 200)},
	})
	s.SetSignificance(0, 0.5)
	s.SetSignificance(1, 0.9)
	s.SetSignificance(2, 0.5)
	ranked := s.RankBySignificance()
	if ranked[0] != 1 {
		t.Fatalf("ranked = %v", ranked)
	}
	// Tie between 0 and 2 broken by id.
	if ranked[1] != 0 || ranked[2] != 2 {
		t.Fatalf("tie-break wrong: %v", ranked)
	}
}

func TestKindString(t *testing.T) {
	if KindPOI.String() != "poi" || KindTurningPoint.String() != "turning-point" {
		t.Fatal("kind strings wrong")
	}
}

func TestEmptySet(t *testing.T) {
	s := NewSet(nil)
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
	if _, ok := s.Nearest(base, 1000); ok {
		t.Fatal("empty set Nearest should miss")
	}
	if got := s.RankBySignificance(); len(got) != 0 {
		t.Fatalf("empty rank = %v", got)
	}
}
