package stmaker_test

import (
	"fmt"
	"log"

	"stmaker"
	"stmaker/internal/feature"
	"stmaker/internal/hits"
	"stmaker/internal/simulate"
	"stmaker/internal/summarize"
	"stmaker/internal/traj"
)

// Example shows the full pipeline: build a world, train on a historical
// corpus and summarize one trajectory.
func Example() {
	// External semantic inputs — here synthetic; in a deployment they come
	// from a digital map, a POI database and an LBSN check-in feed.
	city := simulate.NewCity(simulate.CityOptions{Rows: 6, Cols: 6, Seed: 1})
	checkins := simulate.GenerateCheckins(city.Landmarks, simulate.CheckinOptions{Seed: 2})
	city.Landmarks.InferSignificance(200, checkins, hits.Options{})

	s, err := stmaker.New(stmaker.Config{Graph: city.Graph, Landmarks: city.Landmarks})
	if err != nil {
		log.Fatal(err)
	}

	train := simulate.GenerateFleet(city, simulate.FleetOptions{NumTrips: 200, Seed: 3, FixedHour: -1, Calm: true})
	corpus := make([]*traj.Raw, 0, len(train))
	for _, tr := range train {
		corpus = append(corpus, tr.Raw)
	}
	if _, err := s.Train(corpus); err != nil {
		log.Fatal(err)
	}

	trips := simulate.GenerateFleet(city, simulate.FleetOptions{NumTrips: 1, Seed: 4, FixedHour: 8})
	sum, err := s.SummarizeK(trips[0].Raw, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(sum.Parts), "partitions")
	// Output: 2 partitions
}

// ExampleSummarizer_RegisterFeature demonstrates the §VI-B extension
// mechanism: a custom feature registered together with its phrase
// template before training.
func ExampleSummarizer_RegisterFeature() {
	city := simulate.NewCity(simulate.CityOptions{Rows: 6, Cols: 6, Seed: 1})
	s, err := stmaker.New(stmaker.Config{Graph: city.Graph, Landmarks: city.Landmarks})
	if err != nil {
		log.Fatal(err)
	}
	err = s.RegisterFeature(feature.NewSpeedChange(), func(sf summarize.SelectedFeature) string {
		return fmt.Sprintf("with %.0f abrupt speed changes", sf.Value)
	})
	fmt.Println(err == nil, s.Registry().Len())
	// Output: true 7
}
