//go:build ignore

// gen_model_v1.go generated testdata/model_v1.stm: a model file written by
// the FormatVersion-1 codec (before the routing overlay existed), pinned so
// the backward-compatibility tests always have a genuine old-format file to
// load. It was run once at codec version 1 and is kept for provenance only —
// re-running it under a newer codec would produce a current-format file, not
// a version-1 one.
//
// The world and corpus are the deterministic simulated city the root
// integration tests build (see newWorld in stmaker_test.go): an 8x8 grid at
// seed 21, check-ins at seed 22, a calm 120-trip fleet at seed 23, trained
// with HMM matching enabled.
//
// Usage (from the repo root): go run testdata/gen_model_v1.go
package main

import (
	"fmt"
	"os"

	"stmaker"
	"stmaker/internal/hits"
	"stmaker/internal/simulate"
	"stmaker/internal/traj"
)

func main() {
	city := simulate.NewCity(simulate.CityOptions{Rows: 8, Cols: 8, BlockMeters: 500, Seed: 21})
	visits := simulate.GenerateCheckins(city.Landmarks, simulate.CheckinOptions{Seed: 22})
	city.Landmarks.InferSignificance(200, visits, hits.Options{})

	s, err := stmaker.New(stmaker.Config{Graph: city.Graph, Landmarks: city.Landmarks, UseHMMMatching: true})
	if err != nil {
		panic(err)
	}
	train := simulate.GenerateFleet(city, simulate.FleetOptions{NumTrips: 120, Seed: 23, FixedHour: -1, Calm: true})
	corpus := make([]*traj.Raw, 0, len(train))
	for _, tr := range train {
		corpus = append(corpus, tr.Raw)
	}
	if _, err := s.Train(corpus); err != nil {
		panic(err)
	}
	f, err := os.Create("testdata/model_v1.stm")
	if err != nil {
		panic(err)
	}
	defer f.Close()
	n, err := s.SaveModel(f)
	if err != nil {
		panic(err)
	}
	fmt.Printf("wrote testdata/model_v1.stm (%d bytes)\n", n)
}
