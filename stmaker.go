// Package stmaker is a Go implementation of STMaker, the
// partition-and-summarization system of Su et al., "Making Sense of
// Trajectory Data: A Partition-and-Summarization Approach" (ICDE 2015).
//
// Given a raw GPS trajectory and external semantic information — a road
// network, a landmark dataset and a corpus of historical trajectories —
// STMaker automatically generates a short text describing the trajectory's
// most unusual travel behaviours:
//
//	The car started from the Daoxiang Community to the Suzhoujie Station
//	with two staying points (in total for about 167 seconds). Then it
//	moved from the Suzhoujie Station to the Haidian Hospital with
//	conducting one U-turn at the Zhichun Road.
//
// The pipeline follows the paper's four steps: (1) rewrite the raw
// trajectory into a landmark-based symbolic trajectory; (2) split it into
// partitions by minimizing a CRF potential that balances landmark
// significance against feature homogeneity; (3) select each partition's
// most irregular features by comparing against historical behaviour; and
// (4) realize the selected features through phrase and sentence templates.
//
// The central type is Summarizer. Construct one with New over a road
// network and landmark set, feed it a training corpus with Train, then
// call Summarize (or SummarizeK for a chosen granularity) on trajectories.
package stmaker

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"stmaker/internal/calibrate"
	"stmaker/internal/feature"
	"stmaker/internal/history"
	"stmaker/internal/irregular"
	"stmaker/internal/landmark"
	"stmaker/internal/metrics"
	"stmaker/internal/partition"
	"stmaker/internal/roadnet"
	"stmaker/internal/sanitize"
	"stmaker/internal/summarize"
	"stmaker/internal/traj"
)

// Metric names recorded by the Summarizer into its metrics Registry, one
// latency histogram per pipeline stage plus training counters. Units and
// paper-section mapping are documented in docs/OBSERVABILITY.md; keep the
// two in sync.
const (
	// MetricStageCalibrate times trajectory calibration (§II-A).
	MetricStageCalibrate = "stage_calibrate_seconds"
	// MetricStageExtract times the feature-extraction hot loop (§III).
	MetricStageExtract = "stage_extract_seconds"
	// MetricStagePartition times the CRF/DP partition search (§IV).
	MetricStagePartition = "stage_partition_seconds"
	// MetricStageSelect times irregular-rate feature selection (§V).
	MetricStageSelect = "stage_select_seconds"
	// MetricStageRender times template realization (§VI-A).
	MetricStageRender = "stage_render_seconds"
	// MetricSummarize times SummarizeSymbolic end to end (extract +
	// partition + select + render; calibration is counted separately).
	MetricSummarize = "summarize_seconds"
	// MetricTrain times each Train call end to end (§V knowledge build).
	MetricTrain = "train_seconds"

	// MetricSummaries counts successful summarizations.
	MetricSummaries = "summaries_total"
	// MetricSummarizeErrors counts failed summarizations.
	MetricSummarizeErrors = "summarize_errors_total"
	// MetricTrainCalibrated counts corpus trajectories learned from.
	MetricTrainCalibrated = "train_trajectories_calibrated_total"
	// MetricTrainSkipped counts corpus trajectories dropped by Train.
	MetricTrainSkipped = "train_trajectories_skipped_total"
	// MetricSanitizeRepairs counts individual sample repairs applied by
	// the input sanitizer (Config.Sanitize), across Train and Summarize.
	MetricSanitizeRepairs = "sanitize_repairs_total"
	// MetricSanitizeRejects counts trajectories the sanitizer rejected
	// as unusable (fewer than 2 plausible samples).
	MetricSanitizeRejects = "sanitize_rejects_total"

	// MetricSPCacheHits counts lookups answered by the shared
	// shortest-path distance cache behind HMM map matching
	// (Config.UseHMMMatching; see roadnet.SPCache).
	MetricSPCacheHits = "roadnet_sp_cache_hits_total"
	// MetricSPCacheMisses counts cache lookups that fell through to a
	// bounded graph search.
	MetricSPCacheMisses = "roadnet_sp_cache_misses_total"
	// MetricSPCacheEvictions counts LRU evictions from the cache.
	MetricSPCacheEvictions = "roadnet_sp_cache_evictions_total"

	// MetricModelBuild times model-assembly work that happens inside
	// Train beyond corpus aggregation — today the ALT routing-overlay
	// precomputation (see Config.OverlayLandmarks). The serving reload
	// path observes its whole rebuild into the same histogram name in the
	// server registry, so one dashboard panel covers both.
	MetricModelBuild = "model_build_seconds"
	// MetricModelVersion is a gauge holding the currently-served model's
	// version (see Model.Version); 0 until the first publish.
	MetricModelVersion = "model_version"
	// MetricModelSwaps counts model publications — initial training,
	// re-training and warm-start loads all increment it.
	MetricModelSwaps = "model_swaps_total"
)

// ErrNotTrained is returned by Summarize before a training corpus has been
// provided; feature selection needs historical knowledge.
var ErrNotTrained = errors.New("stmaker: summarizer has no historical corpus; call Train first")

// ErrInvalidInput marks errors caused by the caller's trajectory rather
// than by the summarizer's own state: structural validation failures,
// sanitizer rejections and calibration failures all wrap it. Servers use
// IsInputError to map these to a 4xx while everything else (ErrNotTrained,
// partition failures) stays a 5xx.
var ErrInvalidInput = errors.New("stmaker: invalid trajectory input")

// IsInputError reports whether err stems from the input trajectory (wraps
// ErrInvalidInput) as opposed to server-side state.
func IsInputError(err error) bool { return errors.Is(err, ErrInvalidInput) }

// Config configures a Summarizer. Graph and Landmarks are required; every
// other field has a sensible default matching the paper's experimental
// settings (§VII-B).
type Config struct {
	// Graph is the road network providing routing features.
	Graph *roadnet.Graph
	// Landmarks is the landmark dataset with significance scores.
	Landmarks *landmark.Set

	// CalibrationRadiusMeters is the anchor radius for rewriting raw
	// trajectories into symbolic ones (default 100).
	CalibrationRadiusMeters float64
	// MinAnchorSpacingMeters thins dense anchors: co-located landmarks
	// (e.g. a POI cluster centre on an intersection) otherwise create
	// degenerate zero-length segments. Default 50; negative disables
	// thinning.
	MinAnchorSpacingMeters float64
	// Ca weights landmark significance in the partition potential
	// (default 0.5, the paper's setting).
	Ca float64
	// Threshold is the irregular-rate threshold η above which a feature is
	// described (default 0.2, the paper's setting).
	Threshold float64
	// Weights are the user-specified per-feature weights w_f (§IV-B);
	// missing features default to 1.
	Weights feature.Weights
	// K fixes the summary granularity to exactly K partitions; 0 uses the
	// globally optimal (unconstrained) partition, STMaker's default.
	K int
	// GlobalMeanFallback substitutes the corpus-wide feature mean when the
	// historical feature map lacks a transition (default true via New).
	GlobalMeanFallback *bool
	// UseHMMMatching switches routing-feature extraction from greedy
	// nearest-edge map matching to HMM (Viterbi) matching — slower but
	// robust to GPS noise near parallel roads.
	UseHMMMatching bool
	// SPCacheEntries sizes the shared shortest-path distance cache behind
	// HMM map matching: transition distances repeat across overlapping
	// trajectories, so concurrent Summarize calls feed one process-wide
	// sharded LRU (see roadnet.SPCache). 0 uses
	// roadnet.DefaultSPCacheEntries; negative disables the cache. Ignored
	// unless UseHMMMatching is set. Cache traffic is reported by the
	// roadnet_sp_cache_* counters.
	SPCacheEntries int
	// TrainWorkers bounds the goroutines Train uses to calibrate the
	// corpus in parallel: 0 (default) uses GOMAXPROCS, 1 forces the
	// serial path (the benchmark baseline).
	TrainWorkers int
	// OverlayLandmarks is the number of ALT routing landmarks Train
	// precomputes over the road graph and hangs off the published Model
	// (see roadnet.BuildOverlay): goal-directed lower bounds make cold
	// shortest-path queries near-warm while keeping results bit-identical
	// to plain Dijkstra. 0 uses roadnet.DefaultOverlayLandmarks; negative
	// disables the overlay (models then serve through the plain engine).
	// The precomputation parallelizes across TrainWorkers and its
	// duration is reported in TrainStats.OverlayBuildSeconds and the
	// model_build_seconds histogram.
	OverlayLandmarks int
	// Sanitize, when non-nil, repairs every raw trajectory (corpus and
	// serve-time) before calibration: invalid fixes are dropped,
	// timestamps re-sorted and deduplicated, teleport outliers and
	// parked-antenna jitter removed (see internal/sanitize). Nil keeps
	// the library's historical strict behaviour; cmd/stmakerd enables it
	// by default. &sanitize.Options{} applies the default thresholds.
	Sanitize *sanitize.Options
	// Metrics receives the per-stage latency histograms and pipeline
	// counters (see the Metric* constants); nil gives the Summarizer a
	// private registry, exposed via Metrics().
	Metrics *metrics.Registry
}

// TrainStats reports what Train managed to use.
type TrainStats struct {
	// Calibrated is the number of corpus trajectories successfully
	// rewritten into symbolic trajectories and learned from.
	Calibrated int
	// Skipped is the number dropped (too short, off the landmark grid, or
	// structurally invalid).
	Skipped int
	// Transitions is the number of distinct landmark transitions in the
	// historical feature map afterwards.
	Transitions int
	// Repaired is the number of corpus trajectories the input sanitizer
	// (Config.Sanitize) had to repair before calibration; always 0 when
	// sanitization is off.
	Repaired int
	// Repairs aggregates the sanitizer's per-kind repair counts over the
	// whole corpus.
	Repairs sanitize.Report
	// OverlayBuildSeconds is the wall time spent precomputing the ALT
	// routing overlay (Config.OverlayLandmarks); 0 when the overlay was
	// disabled or reused from the previously published model.
	OverlayBuildSeconds float64
}

// Summarizer is the end-to-end STMaker pipeline. All trained knowledge
// lives in an immutable Model behind an atomic pointer, so Summarize is
// safe to call concurrently with Train, LoadModel and other Summarize
// calls: each request reads one consistent snapshot, and a re-train
// swaps in its replacement atomically. Only RegisterFeature must happen
// before the first model is published, since it changes the feature
// vector layout the model is keyed to.
type Summarizer struct {
	cfg        Config
	registry   *feature.Registry
	ctx        *feature.Context
	calibrator *calibrate.Calibrator
	sanitizer  *sanitize.Sanitizer
	templates  *summarize.TemplateSet
	fallback   bool

	mx     *metrics.Registry
	timers stageTimers

	// model holds the published knowledge snapshot (nil before the first
	// Train/LoadModel); pubMu serializes publishes. Both are pointers so
	// the shallow clones made by WithWeights/WithThreshold share the same
	// cell — a retrain is visible to every clone — and so clones never
	// copy a lock or an atomic value.
	model *atomic.Pointer[Model]
	pubMu *sync.Mutex

	// scratch pools per-request pipeline buffers (feature matrices,
	// partition inputs, weight vectors). The pooled weight vector is laid
	// out for this summarizer's cfg.Weights, so WithWeights clones get a
	// fresh pool instead of sharing this one.
	scratch *sync.Pool
}

// pipeScratch is one request's reusable pipeline scratch: everything
// summarizeSymbolic needs that would otherwise be allocated per call
// and die young. Nothing in here is referenced by the returned Summary
// — the contract `make lint` (poolescape) enforces at every Get/Put
// site: an alias escaping into the Summary would be overwritten by the
// next request that draws the same scratch.
type pipeScratch struct {
	mat   feature.MatrixBuf
	norm  feature.MatrixBuf
	feats [][]float64
	sig   []float64
	wvec  []float64
}

func newScratchPool() *sync.Pool {
	return &sync.Pool{New: func() any { return new(pipeScratch) }}
}

// weights returns the pooled weight vector, rebuilt when the registry
// grew since this scratch last served (RegisterFeature happens only
// before the first publish, so in steady state this is a length check).
func (ps *pipeScratch) weights(w feature.Weights, reg *feature.Registry) []float64 {
	if len(ps.wvec) != reg.Len() {
		ps.wvec = w.VectorFor(reg)
	}
	return ps.wvec
}

// input returns the pooled partition input sized for n segments.
func (ps *pipeScratch) input(n int) partition.Input {
	if cap(ps.feats) < n {
		ps.feats = make([][]float64, n)
		ps.sig = make([]float64, n)
	}
	return partition.Input{Features: ps.feats[:n], Significance: ps.sig[:n]}
}

// stageTimers holds the pre-resolved per-stage histograms so the hot path
// never takes the registry's registration lock.
type stageTimers struct {
	calibrate *metrics.Histogram
	extract   *metrics.Histogram
	partition *metrics.Histogram
	sel       *metrics.Histogram
	render    *metrics.Histogram
	summarize *metrics.Histogram
	train     *metrics.Histogram
}

func newStageTimers(mx *metrics.Registry) stageTimers {
	return stageTimers{
		calibrate: mx.Histogram(MetricStageCalibrate),
		extract:   mx.Histogram(MetricStageExtract),
		partition: mx.Histogram(MetricStagePartition),
		sel:       mx.Histogram(MetricStageSelect),
		render:    mx.Histogram(MetricStageRender),
		summarize: mx.Histogram(MetricSummarize),
		train:     mx.Histogram(MetricTrain),
	}
}

// New builds a Summarizer with the paper's six default features.
func New(cfg Config) (*Summarizer, error) {
	if cfg.Graph == nil {
		return nil, errors.New("stmaker: Config.Graph is required")
	}
	if cfg.Landmarks == nil || cfg.Landmarks.Len() < 2 {
		return nil, errors.New("stmaker: Config.Landmarks must hold at least 2 landmarks")
	}
	if cfg.CalibrationRadiusMeters == 0 { //lint:allow floateq -- zero means unset in Config
		cfg.CalibrationRadiusMeters = 100
	}
	switch {
	case cfg.MinAnchorSpacingMeters == 0: //lint:allow floateq -- zero means unset in Config
		cfg.MinAnchorSpacingMeters = 50
	case cfg.MinAnchorSpacingMeters < 0:
		cfg.MinAnchorSpacingMeters = 0
	}
	if cfg.Ca == 0 { //lint:allow floateq -- zero means unset in Config
		cfg.Ca = partition.DefaultCa
	}
	if cfg.Threshold == 0 { //lint:allow floateq -- zero means unset in Config
		cfg.Threshold = irregular.DefaultThreshold
	}
	fallback := true
	if cfg.GlobalMeanFallback != nil {
		fallback = *cfg.GlobalMeanFallback
	}
	reg := feature.NewDefaultRegistry()
	ctx := feature.NewContext(cfg.Graph, roadnet.NewMatcher(cfg.Graph), cfg.Landmarks)
	mx := cfg.Metrics
	if mx == nil {
		mx = metrics.NewRegistry()
	}
	if cfg.UseHMMMatching {
		var cache *roadnet.SPCache
		if cfg.SPCacheEntries >= 0 {
			cache = roadnet.NewSPCache(roadnet.SPCacheOptions{
				Capacity:  cfg.SPCacheEntries,
				Hits:      mx.Counter(MetricSPCacheHits),
				Misses:    mx.Counter(MetricSPCacheMisses),
				Evictions: mx.Counter(MetricSPCacheEvictions),
			})
		}
		ctx.HMM = roadnet.NewHMMMatcher(cfg.Graph, roadnet.HMMOptions{Cache: cache})
	}
	s := &Summarizer{
		cfg:      cfg,
		registry: reg,
		ctx:      ctx,
		calibrator: calibrate.New(cfg.Landmarks, calibrate.Options{
			RadiusMeters:     cfg.CalibrationRadiusMeters,
			MinSpacingMeters: cfg.MinAnchorSpacingMeters,
		}),
		templates: summarize.DefaultTemplates(),
		fallback:  fallback,
		mx:        mx,
		timers:    newStageTimers(mx),
		model:     &atomic.Pointer[Model]{},
		pubMu:     &sync.Mutex{},
		scratch:   newScratchPool(),
	}
	if cfg.Sanitize != nil {
		s.sanitizer = sanitize.New(*cfg.Sanitize)
	}
	return s, nil
}

// Metrics exposes the registry holding the Summarizer's per-stage latency
// histograms and pipeline counters (the Metric* constants). The HTTP
// service serves its snapshot at GET /metrics; see docs/OBSERVABILITY.md.
func (s *Summarizer) Metrics() *metrics.Registry { return s.mx }

// Registry exposes the feature registry (read-mostly; use RegisterFeature
// to extend it).
func (s *Summarizer) Registry() *feature.Registry { return s.registry }

// Templates exposes the template set for customization.
func (s *Summarizer) Templates() *summarize.TemplateSet { return s.templates }

// RegisterFeature installs a custom feature with its phrase template
// (§VI-B). It must be called before Train or LoadModel, since the
// historical feature map's dimensionality — and the model fingerprint —
// are fixed at training time.
func (s *Summarizer) RegisterFeature(e feature.Extractor, clause summarize.ClauseRenderer) error {
	if s.model.Load() != nil {
		return errors.New("stmaker: RegisterFeature must be called before Train or LoadModel")
	}
	if clause != nil {
		// Validate the clause before touching the registry so a failure
		// leaves no partial registration; SetClause overwrites any default
		// template for the same key.
		if err := s.templates.SetClause(e.Descriptor().Key, clause); err != nil {
			return err
		}
	}
	return s.registry.Register(e)
}

// Calibrate rewrites a raw trajectory into its symbolic form against the
// configured landmark set (§II-A).
func (s *Summarizer) Calibrate(r *traj.Raw) (*traj.Symbolic, error) {
	defer s.timers.calibrate.ObserveSince(time.Now())
	return s.calibrator.Calibrate(r)
}

// Train learns the historical knowledge (§V) from a corpus of raw
// trajectories — the popular-route statistics and the per-transition
// historical feature map — then publishes it as a new Model in one
// atomic swap. Train may be called again, including while Summarize
// traffic is in flight: the new model is built completely off to the
// side and replaces the old one wholesale (never merged), so concurrent
// requests see either the old knowledge or the new, never a mix.
//
// Calibration of the corpus is embarrassingly parallel and runs across
// Config.TrainWorkers goroutines (default GOMAXPROCS); the aggregation in
// trainSymbolic stays single-writer. Corpus order is preserved, so Train
// is deterministic regardless of worker count.
func (s *Summarizer) Train(corpus []*traj.Raw) (TrainStats, error) {
	defer s.timers.train.ObserveSince(time.Now())
	calibrated, reports := s.calibrateCorpus(corpus)

	var stats TrainStats
	symbolic := make([]*traj.Symbolic, 0, len(corpus))
	for i, sym := range calibrated {
		stats.Repairs.Merge(reports[i])
		if !reports[i].Clean() {
			stats.Repaired++
		}
		if sym == nil {
			stats.Skipped++
			continue
		}
		symbolic = append(symbolic, sym)
		stats.Calibrated++
	}
	s.mx.Counter(MetricTrainCalibrated).Add(int64(stats.Calibrated))
	s.mx.Counter(MetricTrainSkipped).Add(int64(stats.Skipped))
	if n := stats.Repairs.Repairs(); n > 0 {
		s.mx.Counter(MetricSanitizeRepairs).Add(int64(n))
	}
	if len(symbolic) == 0 {
		return stats, errors.New("stmaker: no corpus trajectory could be calibrated")
	}
	m := s.trainSymbolic(symbolic, stats)
	stats.Transitions = m.stats.Transitions
	stats.OverlayBuildSeconds = m.stats.OverlayBuildSeconds
	return stats, nil
}

// calibrateCorpus sanitizes (when configured) and calibrates every corpus
// trajectory, in parallel when more than one worker is configured,
// returning one symbolic slot and one repair report per input (nil
// symbolic where sanitization rejected or calibration failed). The
// calibrator and sanitizer are stateless per call and the landmark index
// is immutable, so workers share them safely.
func (s *Summarizer) calibrateCorpus(corpus []*traj.Raw) ([]*traj.Symbolic, []sanitize.Report) {
	out := make([]*traj.Symbolic, len(corpus))
	reports := make([]sanitize.Report, len(corpus))
	one := func(i int) {
		r := corpus[i]
		if s.sanitizer != nil {
			repaired, rep, err := s.sanitizer.Sanitize(r)
			reports[i] = rep
			if err != nil {
				s.mx.Counter(MetricSanitizeRejects).Inc()
				return
			}
			r = repaired
		}
		t0 := time.Now()
		out[i], _ = s.calibrator.Calibrate(r)
		s.timers.calibrate.ObserveSince(t0)
	}
	workers := s.cfg.TrainWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(corpus) {
		workers = len(corpus)
	}
	if workers <= 1 {
		for i := range corpus {
			one(i)
		}
		return out, reports
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(corpus) {
					return
				}
				// Each worker writes only its own slots; counters and
				// histograms are atomic, so concurrent observation is
				// safe.
				one(i)
			}
		}()
	}
	wg.Wait()
	return out, reports
}

// TrainSymbolic learns from pre-calibrated trajectories and publishes the
// resulting Model, which it returns. Like Train, it fully replaces any
// previous knowledge and is safe to call while Summarize traffic is in
// flight.
func (s *Summarizer) TrainSymbolic(corpus []*traj.Symbolic) *Model {
	return s.trainSymbolic(corpus, TrainStats{Calibrated: len(corpus)})
}

// trainSymbolic builds the knowledge snapshot off to the side and
// publishes it. Feature extraction runs in a private context sharing the
// serving context's map resources: extraction is deterministic given the
// same graph, matcher and landmarks, and a private context keeps the
// corpus segments out of the long-lived serving edge cache, so repeated
// live retrains don't accumulate memory.
func (s *Summarizer) trainSymbolic(corpus []*traj.Symbolic, stats TrainStats) *Model {
	tctx := feature.NewContext(s.ctx.Graph, s.ctx.Matcher, s.ctx.Landmarks)
	tctx.HMM = s.ctx.HMM
	tctx.MatchRadiusMeters = s.ctx.MatchRadiusMeters
	featMap := history.BuildFeatureMap(corpus, s.registry, tctx)
	stats.Transitions = featMap.NumEdges()
	overlay := s.routingOverlay(&stats)
	return s.publish(Model{
		featureKeys:             s.featureKeys(),
		calibrationRadiusMeters: s.cfg.CalibrationRadiusMeters,
		minAnchorSpacingMeters:  s.cfg.MinAnchorSpacingMeters,
		stats:                   stats,
		popular:                 history.BuildPopular(corpus),
		featMap:                 featMap,
		overlay:                 overlay,
	})
}

// routingOverlay returns the ALT overlay for the model being assembled:
// the previous model's overlay when one is already serving (the graph is
// fixed per Summarizer, so its tables stay valid across retrains — a live
// retrain never re-pays the precomputation), a freshly built one on the
// first train, or nil when Config.OverlayLandmarks disables it. A fresh
// build parallelizes across Config.TrainWorkers, stamps
// stats.OverlayBuildSeconds and observes model_build_seconds.
func (s *Summarizer) routingOverlay(stats *TrainStats) *roadnet.Overlay {
	if m := s.model.Load(); m != nil && m.overlay != nil && m.overlay.NumNodes() == s.cfg.Graph.NumNodes() {
		return m.overlay
	}
	if s.cfg.OverlayLandmarks < 0 {
		return nil
	}
	t0 := time.Now()
	o := roadnet.BuildOverlay(s.cfg.Graph, roadnet.OverlayOptions{
		Landmarks: s.cfg.OverlayLandmarks,
		Workers:   s.cfg.TrainWorkers,
	})
	stats.OverlayBuildSeconds = time.Since(t0).Seconds()
	s.mx.Histogram(MetricModelBuild).Observe(stats.OverlayBuildSeconds)
	return o
}

// Trained reports whether a knowledge model has been published (via
// Train, TrainSymbolic or LoadModel).
func (s *Summarizer) Trained() bool { return s.model.Load() != nil }

// Popular exposes the current model's popular-route knowledge (nil
// before the first Train/LoadModel).
func (s *Summarizer) Popular() *history.Popular {
	if m := s.model.Load(); m != nil {
		return m.popular
	}
	return nil
}

// FeatureMap exposes the current model's historical feature map (nil
// before the first Train/LoadModel).
func (s *Summarizer) FeatureMap() *history.FeatureMap {
	if m := s.model.Load(); m != nil {
		return m.featMap
	}
	return nil
}

// WithWeights returns a summarizer that shares this one's map resources
// and trained knowledge but applies different feature weights — the cheap
// way to sweep w_f (Fig. 10a) without retraining.
func (s *Summarizer) WithWeights(w feature.Weights) *Summarizer {
	clone := *s
	clone.cfg.Weights = w
	// The pooled weight vectors are laid out for the old weights.
	clone.scratch = newScratchPool()
	return &clone
}

// WithThreshold returns a summarizer sharing trained knowledge with a
// different irregular-rate threshold η.
func (s *Summarizer) WithThreshold(eta float64) *Summarizer {
	clone := *s
	clone.cfg.Threshold = eta
	return &clone
}

// FlattenHistoryForAblation publishes a model whose historical feature
// map is collapsed so every known transition carries the corpus-wide
// global regular vector, removing the per-edge knowledge of §V-B. It
// exists for the ablation benches that quantify the value of the
// historical feature map. No-op before the first Train.
func (s *Summarizer) FlattenHistoryForAblation() {
	if m := s.model.Load(); m != nil {
		flat := *m
		flat.featMap = m.featMap.Flattened()
		s.publish(flat)
	}
}

// Summarize generates the summary of a raw trajectory at the configured
// granularity (Config.K, defaulting to the optimal partition).
func (s *Summarizer) Summarize(r *traj.Raw) (*summarize.Summary, error) {
	return s.SummarizeK(r, s.cfg.K)
}

// SummarizeK generates the summary with exactly k partitions (clamped to
// the number of trajectory segments); k <= 0 uses the optimal partition.
func (s *Summarizer) SummarizeK(r *traj.Raw, k int) (*summarize.Summary, error) {
	return s.SummarizeKContext(context.Background(), r, k)
}

// SummarizeContext is Summarize with cancellation: the pipeline checks
// ctx between stages (calibrate → extract → partition → select → render)
// and aborts with ctx.Err() as soon as the deadline passes or the caller
// cancels. Serving paths use it to bound per-request work.
func (s *Summarizer) SummarizeContext(ctx context.Context, r *traj.Raw) (*summarize.Summary, error) {
	return s.SummarizeKContext(ctx, r, s.cfg.K)
}

// SummarizeKContext is SummarizeK with cancellation (see
// SummarizeContext). Input-shaped failures — sanitizer rejections and
// calibration errors — wrap ErrInvalidInput so servers can map them to a
// client error; cancellation surfaces as ctx.Err().
func (s *Summarizer) SummarizeKContext(ctx context.Context, r *traj.Raw, k int) (*summarize.Summary, error) {
	if err := s.checkCtx(ctx); err != nil {
		return nil, err
	}
	if s.sanitizer != nil {
		repaired, rep, err := s.sanitizer.Sanitize(r)
		if err != nil {
			s.mx.Counter(MetricSanitizeRejects).Inc()
			s.mx.Counter(MetricSummarizeErrors).Inc()
			return nil, fmt.Errorf("%w: %w", ErrInvalidInput, err)
		}
		if n := rep.Repairs(); n > 0 {
			s.mx.Counter(MetricSanitizeRepairs).Add(int64(n))
		}
		r = repaired
	}
	sym, err := s.Calibrate(r)
	if err != nil {
		s.mx.Counter(MetricSummarizeErrors).Inc()
		return nil, fmt.Errorf("%w: %w", ErrInvalidInput, err)
	}
	return s.summarizeSymbolic(ctx, sym, k)
}

// SummarizeSymbolic runs partitioning, feature selection and template
// realization on an already-calibrated trajectory.
func (s *Summarizer) SummarizeSymbolic(sym *traj.Symbolic, k int) (*summarize.Summary, error) {
	return s.summarizeSymbolic(context.Background(), sym, k)
}

// SummarizeSymbolicContext is SummarizeSymbolic with per-stage
// cancellation checks (see SummarizeContext).
func (s *Summarizer) SummarizeSymbolicContext(ctx context.Context, sym *traj.Symbolic, k int) (*summarize.Summary, error) {
	return s.summarizeSymbolic(ctx, sym, k)
}

// checkCtx is the between-stages cancellation checkpoint: expired or
// cancelled contexts abort the pipeline, counted as summarize errors.
func (s *Summarizer) checkCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		s.mx.Counter(MetricSummarizeErrors).Inc()
		return err
	}
	return nil
}

func (s *Summarizer) summarizeSymbolic(ctx context.Context, sym *traj.Symbolic, k int) (*summarize.Summary, error) {
	// One atomic load pins the knowledge snapshot for the whole request;
	// a concurrent retrain publishing a successor does not disturb it.
	model := s.model.Load()
	if model == nil {
		s.mx.Counter(MetricSummarizeErrors).Inc()
		return nil, ErrNotTrained
	}
	n := sym.NumSegments()
	if n == 0 {
		s.mx.Counter(MetricSummarizeErrors).Inc()
		return nil, fmt.Errorf("%w: %w", ErrInvalidInput, traj.ErrNotCalibrated)
	}
	defer s.timers.summarize.ObserveSince(time.Now())

	// Per-request pooled scratch; the segment-edge cache entry is
	// released with it, so the long-lived serving Context stays bounded
	// by the number of requests in flight.
	scratch := s.scratch.Get().(*pipeScratch)
	defer s.scratch.Put(scratch)
	defer s.ctx.ReleaseEdges(sym)

	if err := s.checkCtx(ctx); err != nil {
		return nil, err
	}
	tExtract := time.Now()
	matrix := s.registry.ExtractAllInto(&scratch.mat, sym, s.ctx)
	s.timers.extract.ObserveSince(tExtract)

	if err := s.checkCtx(ctx); err != nil {
		return nil, err
	}
	res, err := s.partitionTrajectory(scratch, sym, matrix, k)
	if err != nil {
		s.mx.Counter(MetricSummarizeErrors).Inc()
		return nil, err
	}
	if err := s.checkCtx(ctx); err != nil {
		return nil, err
	}

	selector := &summarize.Selector{
		Registry:           s.registry,
		Ctx:                s.ctx,
		Popular:            model.popular,
		FeatureMap:         model.featMap,
		Landmarks:          s.cfg.Landmarks,
		Weights:            s.cfg.Weights,
		Threshold:          s.cfg.Threshold,
		GlobalMeanFallback: s.fallback,
	}

	tSelect := time.Now()
	summary := &summarize.Summary{TrajectoryID: sym.ID}
	for _, part := range res.Parts {
		ps := summarize.PartSummary{
			Part:   part,
			Source: sym.Visits[part.FirstSeg].Landmark,
			Dest:   sym.Visits[part.LastSeg+1].Landmark,
		}
		ps.SourceName = s.cfg.Landmarks.Get(ps.Source).Name
		ps.DestName = s.cfg.Landmarks.Get(ps.Dest).Name
		if g, name, ok := summarize.RoadForPart(s.ctx, sym, part); ok {
			ps.RoadType = g.String()
			ps.RoadName = name
		}
		ps.Features = selector.SelectForPart(sym, part, matrix)
		summary.Parts = append(summary.Parts, ps)
	}
	s.timers.sel.ObserveSince(tSelect)

	if err := s.checkCtx(ctx); err != nil {
		return nil, err
	}
	tRender := time.Now()
	s.templates.RenderSummary(summary)
	s.timers.render.ObserveSince(tRender)
	s.mx.Counter(MetricSummaries).Inc()
	return summary, nil
}

// Partition exposes the partition step on its own: it calibrates nothing
// and selects nothing, returning the optimal (k <= 0) or exact-k partition
// of the symbolic trajectory.
func (s *Summarizer) Partition(sym *traj.Symbolic, k int) (partition.Result, error) {
	scratch := s.scratch.Get().(*pipeScratch)
	defer s.scratch.Put(scratch)
	tExtract := time.Now()
	matrix := s.registry.ExtractAllInto(&scratch.mat, sym, s.ctx)
	s.timers.extract.ObserveSince(tExtract)
	return s.partitionTrajectory(scratch, sym, matrix, k)
}

func (s *Summarizer) partitionTrajectory(scratch *pipeScratch, sym *traj.Symbolic, matrix []feature.Vector, k int) (partition.Result, error) {
	defer s.timers.partition.ObserveSince(time.Now())
	n := sym.NumSegments()
	norm := feature.NormalizeByMaxInto(&scratch.norm, matrix)
	in := scratch.input(n)
	for i := 0; i < n; i++ {
		in.Features[i] = norm[i]
		// Significance[i] is li.s for the landmark between segments i-1
		// and i (unused at i = 0).
		in.Significance[i] = s.cfg.Landmarks.Get(sym.Visits[i].Landmark).Significance
	}
	opts := partition.Options{Ca: s.cfg.Ca, Weights: scratch.weights(s.cfg.Weights, s.registry)}
	if k <= 0 {
		return partition.Optimal(in, opts)
	}
	if k > n {
		k = n
	}
	return partition.KPartition(in, k, opts)
}

// Describe returns a short multi-line report of a summary, convenient for
// CLI output: the text followed by the selected features per partition.
func Describe(sum *summarize.Summary) string {
	out := sum.Text
	for i, p := range sum.Parts {
		out += fmt.Sprintf("\n  partition %d: segments %d..%d", i+1, p.Part.FirstSeg, p.Part.LastSeg)
		for _, f := range p.Features {
			out += fmt.Sprintf("\n    %-7s Γ=%.2f value=%.1f", f.Key, f.Rate, f.Value)
		}
	}
	return out
}
