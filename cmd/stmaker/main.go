// Command stmaker summarizes raw trajectories: it loads a world and a
// training corpus produced by cmd/trajgen, trains the summarizer, and
// prints a text summary for every trajectory in the input dataset.
//
// Usage:
//
//	stmaker -world world.json -train train.json -input test.json [-k 0] [-n 10] [-v]
//	        [-save-model model.stm]
//
// With -k 0 (default) the globally optimal partition is used; -k > 0
// forces that many partitions. -v additionally prints the selected
// features and their irregular rates. -save-model persists the trained
// model (atomic temp-file + rename) for stmakerd to warm-start from —
// in single-region mode via -model, or in a multi-region -model-dir
// layout (docs/MULTI_REGION.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"stmaker"
	"stmaker/internal/landmark"
	"stmaker/internal/roadnet"
	"stmaker/internal/traj"
	"stmaker/internal/worldio"
)

func main() {
	var (
		worldPath = flag.String("world", "world.json", "world file from trajgen")
		trainPath = flag.String("train", "train.json", "training corpus")
		inputPath = flag.String("input", "test.json", "trajectories to summarize")
		k         = flag.Int("k", 0, "partition count (0 = optimal)")
		n         = flag.Int("n", 10, "max trajectories to summarize (0 = all)")
		verbose   = flag.Bool("v", false, "print selected features per partition")
		savePath  = flag.String("save-model", "", "persist the trained model to this file")
	)
	flag.Parse()

	graph, lms, err := loadWorld(*worldPath)
	if err != nil {
		fatal(err)
	}
	s, err := stmaker.New(stmaker.Config{Graph: graph, Landmarks: lms, K: *k})
	if err != nil {
		fatal(err)
	}
	train, err := loadTrips(*trainPath)
	if err != nil {
		fatal(err)
	}
	stats, err := s.Train(train)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "trained on %d/%d trajectories (%d transitions)\n",
		stats.Calibrated, len(train), stats.Transitions)
	if *savePath != "" {
		if err := saveModel(s, *savePath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "saved model to %s\n", *savePath)
	}

	input, err := loadTrips(*inputPath)
	if err != nil {
		fatal(err)
	}
	if *n > 0 && *n < len(input) {
		input = input[:*n]
	}
	for _, r := range input {
		sum, err := s.Summarize(r)
		if err != nil {
			fmt.Printf("%s: cannot summarize: %v\n", r.ID, err)
			continue
		}
		if *verbose {
			fmt.Printf("%s:\n%s\n", r.ID, stmaker.Describe(sum))
		} else {
			fmt.Printf("%s: %s\n", r.ID, sum.Text)
		}
	}
}

func loadWorld(path string) (*roadnet.Graph, *landmark.Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return worldio.LoadWorld(f)
}

func loadTrips(path string) ([]*traj.Raw, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return worldio.LoadTrips(f)
}

// saveModel persists the trained model atomically (temp file in the
// destination directory + rename), matching stmakerd's -save-model
// semantics so a crash mid-write never leaves a truncated model file.
func saveModel(s *stmaker.Summarizer, path string) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(f.Name())
	if _, err := s.SaveModel(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stmaker:", err)
	os.Exit(1)
}
