// Command stmaker-load drives sustained summarization traffic through
// the real HTTP serving path and reports what the server sustained:
// QPS, latency percentiles, error counts and allocation pressure. It is
// the measurement harness behind BENCH_serving.json and the
// "Sustained throughput" section of docs/PERFORMANCE.md.
//
// Usage:
//
//	stmaker-load [-duration 10s] [-concurrency 4] [-batch 8] [-mix 0.5]
//	             [-url http://host:8080 [-workload fleet.json]]
//	             [-rows 7] [-cols 7] [-seed 51] [-train 120] [-fleet 64]
//	             [-json] [-assert]
//
// With no -url it runs in self mode: it synthesizes a city, trains a
// summarizer, starts the real server on a loopback listener and load
// tests it in-process — fully reproducible from -seed, no setup needed.
// In self mode the report includes process-wide allocations per
// summarized item (client + server; the client pre-encodes every
// request body, so the server dominates).
//
// With -url it drives an already-running stmakerd. The workload should
// come from a file written by `trajgen -fleet N` against the same
// world the server loaded; without -workload it synthesizes trips from
// the city flags, which only route correctly if they match the
// server's world.
//
// Traffic mix: each request is a batch POST /summarize/batch of -batch
// items with probability -mix, otherwise a single POST /summarize.
// -mix 0 is single-only, -mix 1 batch-only, -batch 0 forces single.
//
// -json writes the machine-readable run record (the BENCH_serving.json
// "run" object) to stdout instead of the human text. -assert exits
// nonzero unless the run summarized at least one item with zero 5xx
// and zero transport errors — the CI load-smoke gate.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"stmaker"
	"stmaker/internal/hits"
	"stmaker/internal/server"
	"stmaker/internal/simulate"
	"stmaker/internal/traj"
	"stmaker/internal/worldio"
)

func main() {
	var (
		url         = flag.String("url", "", "target server base URL (default: self mode, in-process server)")
		workload    = flag.String("workload", "", "trips file from `trajgen -fleet N` (default: synthesize from city flags)")
		duration    = flag.Duration("duration", 10*time.Second, "how long to sustain load")
		concurrency = flag.Int("concurrency", 4, "concurrent client workers")
		batchSize   = flag.Int("batch", 8, "items per batch request (0 disables batch traffic)")
		mix         = flag.Float64("mix", 0.5, "fraction of requests that are batches (0..1)")
		rows        = flag.Int("rows", 7, "self mode: city grid rows")
		cols        = flag.Int("cols", 7, "self mode: city grid columns")
		seed        = flag.Int64("seed", 51, "self mode: world + workload seed")
		trainN      = flag.Int("train", 120, "self mode: training trips")
		fleetN      = flag.Int("fleet", 64, "synthesized workload trips (when no -workload)")
		hmm         = flag.Bool("hmm", false, "self mode: serve with HMM map matching")
		jsonOut     = flag.Bool("json", false, "emit the run record as JSON to stdout")
		assert      = flag.Bool("assert", false, "exit nonzero unless items > 0 and zero 5xx/transport errors")
	)
	flag.Parse()
	if *concurrency < 1 || *duration <= 0 || *mix < 0 || *mix > 1 || *batchSize < 0 {
		fatal(fmt.Errorf("invalid flags: concurrency >= 1, duration > 0, 0 <= mix <= 1, batch >= 0"))
	}
	if *batchSize == 0 {
		*mix = 0
	}

	city := simulate.NewCity(simulate.CityOptions{Rows: *rows, Cols: *cols, Seed: *seed})

	base := *url
	selfMode := base == ""
	if selfMode {
		ts, err := startSelfServer(city, *seed, *trainN, *hmm)
		if err != nil {
			fatal(err)
		}
		defer ts.Close()
		base = ts.URL
	}

	trips, err := loadWorkload(*workload, city, *seed, *fleetN)
	if err != nil {
		fatal(err)
	}
	singles, batches, err := encodeBodies(trips, *batchSize)
	if err != nil {
		fatal(err)
	}

	r := run(runConfig{
		base: base, singles: singles, batches: batches,
		batchSize: *batchSize, mix: *mix,
		concurrency: *concurrency, duration: *duration,
		seed: *seed, measureAllocs: selfMode,
	})
	r.Config = configRecord{
		Mode:        map[bool]string{true: "self", false: "url"}[selfMode],
		Concurrency: *concurrency, DurationSeconds: duration.Seconds(),
		Batch: *batchSize, Mix: *mix, Seed: *seed,
		Workload: len(trips), HMM: *hmm,
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			fatal(err)
		}
	} else {
		printReport(r)
	}

	if *assert {
		switch {
		case r.Items == 0:
			fatal(fmt.Errorf("assert: zero items summarized"))
		case r.Errors.HTTP5xx > 0:
			fatal(fmt.Errorf("assert: %d 5xx responses", r.Errors.HTTP5xx))
		case r.Errors.Transport > 0:
			fatal(fmt.Errorf("assert: %d transport errors", r.Errors.Transport))
		}
	}
}

// startSelfServer builds the trained in-process server on a loopback
// listener, the same construction stmakerd single-region mode uses.
func startSelfServer(city *simulate.City, seed int64, trainN int, hmm bool) (*httptest.Server, error) {
	checkins := simulate.GenerateCheckins(city.Landmarks, simulate.CheckinOptions{Seed: seed + 1})
	city.Landmarks.InferSignificance(200, checkins, hits.Options{})
	s, err := stmaker.New(stmaker.Config{
		Graph: city.Graph, Landmarks: city.Landmarks, UseHMMMatching: hmm,
	})
	if err != nil {
		return nil, err
	}
	fleet := simulate.GenerateFleet(city, simulate.FleetOptions{
		NumTrips: trainN, Seed: seed + 2, FixedHour: -1, Calm: true,
	})
	corpus := make([]*traj.Raw, 0, len(fleet))
	for _, tr := range fleet {
		corpus = append(corpus, tr.Raw)
	}
	if _, err := s.Train(corpus); err != nil {
		return nil, err
	}
	srv, err := server.NewWithOptions(s, server.Options{Logger: server.DiscardLogger()})
	if err != nil {
		return nil, err
	}
	return httptest.NewServer(srv), nil
}

// loadWorkload reads the trips file, or synthesizes the workload fleet
// with the same seed offset trajgen -fleet uses, so self runs and
// file-driven runs of the same seed serve the same trips.
func loadWorkload(path string, city *simulate.City, seed int64, n int) ([]*traj.Raw, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		trips, err := worldio.LoadTrips(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if len(trips) == 0 {
			return nil, fmt.Errorf("%s: empty workload", path)
		}
		return trips, nil
	}
	fleet := simulate.GenerateFleet(city, simulate.FleetOptions{
		NumTrips: n, Seed: seed + 4, FixedHour: -1,
	})
	trips := make([]*traj.Raw, 0, len(fleet))
	for _, tr := range fleet {
		trips = append(trips, tr.Raw)
	}
	return trips, nil
}

// encodeBodies pre-marshals every request body once so the measured
// loop spends its time in the server, not in client-side encoding.
func encodeBodies(trips []*traj.Raw, batchSize int) (singles, batches [][]byte, err error) {
	singles = make([][]byte, 0, len(trips))
	for _, tr := range trips {
		b, err := json.Marshal(server.SummarizeRequest{Trajectory: tr})
		if err != nil {
			return nil, nil, err
		}
		singles = append(singles, b)
	}
	if batchSize > 0 {
		for start := 0; start < len(trips); start += batchSize {
			end := start + batchSize
			if end > len(trips) {
				end = len(trips)
			}
			items := make([]server.SummarizeRequest, 0, end-start)
			for _, tr := range trips[start:end] {
				items = append(items, server.SummarizeRequest{Trajectory: tr})
			}
			b, err := json.Marshal(server.BatchRequest{Items: items})
			if err != nil {
				return nil, nil, err
			}
			batches = append(batches, b)
		}
	}
	return singles, batches, nil
}

type runConfig struct {
	base             string
	singles, batches [][]byte
	batchSize        int
	mix              float64
	concurrency      int
	duration         time.Duration
	seed             int64
	measureAllocs    bool
}

type configRecord struct {
	Mode            string  `json:"mode"`
	Concurrency     int     `json:"concurrency"`
	DurationSeconds float64 `json:"duration_seconds"`
	Batch           int     `json:"batch"`
	Mix             float64 `json:"mix"`
	Seed            int64   `json:"seed"`
	Workload        int     `json:"workload_trips"`
	HMM             bool    `json:"hmm"`
}

type latencyRecord struct {
	Requests int     `json:"requests"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MaxMs    float64 `json:"max_ms"`
}

type errorRecord struct {
	HTTP4xx   int64 `json:"http_4xx"`
	HTTP5xx   int64 `json:"http_5xx"`
	Transport int64 `json:"transport"`
	Items     int64 `json:"item_errors"`
}

// report is the machine-readable run record; BENCH_serving.json holds
// before/after pairs of these.
type report struct {
	Config        configRecord  `json:"config"`
	ElapsedSec    float64       `json:"elapsed_seconds"`
	Requests      int64         `json:"requests"`
	Items         int64         `json:"items"`
	QPS           float64       `json:"requests_per_sec"`
	ItemsPerSec   float64       `json:"items_per_sec"`
	Single        latencyRecord `json:"single_latency"`
	Batch         latencyRecord `json:"batch_latency"`
	Errors        errorRecord   `json:"errors"`
	AllocsPerItem float64       `json:"allocs_per_item,omitempty"`
	BytesPerItem  float64       `json:"bytes_per_item,omitempty"`
}

// workerStats is one worker's private tally, merged after the run so
// the hot loop shares nothing.
type workerStats struct {
	singleNs, batchNs []float64
	items             int64
	errs              errorRecord
}

func run(cfg runConfig) report {
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.concurrency * 2,
		MaxIdleConnsPerHost: cfg.concurrency * 2,
	}}
	singleURL := cfg.base + "/summarize"
	batchURL := cfg.base + "/summarize/batch"

	var before, after runtime.MemStats
	if cfg.measureAllocs {
		runtime.GC()
		runtime.ReadMemStats(&before)
	}

	deadline := time.Now().Add(cfg.duration)
	stats := make([]workerStats, cfg.concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &stats[w]
			rng := rand.New(rand.NewSource(cfg.seed + int64(w)*7919))
			for time.Now().Before(deadline) {
				if cfg.mix > 0 && rng.Float64() < cfg.mix {
					body := cfg.batches[rng.Intn(len(cfg.batches))]
					ns, items, itemErrs, status, err := post(client, batchURL, body, true)
					st.record(ns, items, itemErrs, status, err, &st.batchNs)
				} else {
					body := cfg.singles[rng.Intn(len(cfg.singles))]
					ns, items, itemErrs, status, err := post(client, singleURL, body, false)
					st.record(ns, items, itemErrs, status, err, &st.singleNs)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if cfg.measureAllocs {
		runtime.ReadMemStats(&after)
	}

	var merged workerStats
	for i := range stats {
		merged.singleNs = append(merged.singleNs, stats[i].singleNs...)
		merged.batchNs = append(merged.batchNs, stats[i].batchNs...)
		merged.items += stats[i].items
		merged.errs.HTTP4xx += stats[i].errs.HTTP4xx
		merged.errs.HTTP5xx += stats[i].errs.HTTP5xx
		merged.errs.Transport += stats[i].errs.Transport
		merged.errs.Items += stats[i].errs.Items
	}
	requests := int64(len(merged.singleNs) + len(merged.batchNs))
	r := report{
		ElapsedSec:  elapsed.Seconds(),
		Requests:    requests,
		Items:       merged.items,
		QPS:         float64(requests) / elapsed.Seconds(),
		ItemsPerSec: float64(merged.items) / elapsed.Seconds(),
		Single:      percentiles(merged.singleNs),
		Batch:       percentiles(merged.batchNs),
		Errors:      merged.errs,
	}
	if cfg.measureAllocs && merged.items > 0 {
		r.AllocsPerItem = float64(after.Mallocs-before.Mallocs) / float64(merged.items)
		r.BytesPerItem = float64(after.TotalAlloc-before.TotalAlloc) / float64(merged.items)
	}
	return r
}

func (st *workerStats) record(ns float64, items, itemErrs int64, status int, err error, lat *[]float64) {
	if err != nil {
		st.errs.Transport++
		return
	}
	*lat = append(*lat, ns)
	switch {
	case status >= 500:
		st.errs.HTTP5xx++
	case status >= 400:
		st.errs.HTTP4xx++
	default:
		st.items += items
		st.errs.Items += itemErrs
	}
}

// post issues one request and scans the response. For a batch the item
// count and inline errors are counted with a byte scan instead of a
// JSON decode, keeping the client cheap relative to the server.
func post(client *http.Client, url string, body []byte, batch bool) (ns float64, items, itemErrs int64, status int, err error) {
	t0 := time.Now()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, 0, 0, err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	ns = float64(time.Since(t0).Nanoseconds())
	if err != nil {
		return 0, 0, 0, 0, err
	}
	items, itemErrs = 1, 0
	if batch {
		// Every element carries "id"; failed elements carry a non-empty
		// "error". Both markers are absent from trajectory payloads
		// because responses never echo the input.
		items = int64(bytes.Count(data, []byte(`"id":`)))
		itemErrs = int64(bytes.Count(data, []byte(`"error":"`)))
		items -= itemErrs // failed elements are not summarized items
	}
	return ns, items, itemErrs, resp.StatusCode, nil
}

func percentiles(ns []float64) latencyRecord {
	if len(ns) == 0 {
		return latencyRecord{}
	}
	sort.Float64s(ns)
	at := func(q float64) float64 {
		i := int(q * float64(len(ns)-1))
		return ns[i] / 1e6
	}
	return latencyRecord{
		Requests: len(ns),
		P50Ms:    at(0.50), P95Ms: at(0.95), P99Ms: at(0.99),
		MaxMs: ns[len(ns)-1] / 1e6,
	}
}

func printReport(r report) {
	fmt.Printf("mode %s | concurrency %d | duration %.1fs | batch %d | mix %.2f | workload %d trips\n",
		r.Config.Mode, r.Config.Concurrency, r.ElapsedSec, r.Config.Batch, r.Config.Mix, r.Config.Workload)
	fmt.Printf("requests %d (%.1f req/s)   items %d (%.1f items/s)\n",
		r.Requests, r.QPS, r.Items, r.ItemsPerSec)
	if r.Single.Requests > 0 {
		fmt.Printf("single  p50 %.2fms  p95 %.2fms  p99 %.2fms  max %.2fms  (%d requests)\n",
			r.Single.P50Ms, r.Single.P95Ms, r.Single.P99Ms, r.Single.MaxMs, r.Single.Requests)
	}
	if r.Batch.Requests > 0 {
		fmt.Printf("batch   p50 %.2fms  p95 %.2fms  p99 %.2fms  max %.2fms  (%d requests)\n",
			r.Batch.P50Ms, r.Batch.P95Ms, r.Batch.P99Ms, r.Batch.MaxMs, r.Batch.Requests)
	}
	fmt.Printf("errors  4xx %d  5xx %d  transport %d  item %d\n",
		r.Errors.HTTP4xx, r.Errors.HTTP5xx, r.Errors.Transport, r.Errors.Items)
	if r.AllocsPerItem > 0 {
		fmt.Printf("allocs/item %.0f   bytes/item %.0f   (process-wide: client + in-process server)\n",
			r.AllocsPerItem, r.BytesPerItem)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stmaker-load:", err)
	os.Exit(1)
}
