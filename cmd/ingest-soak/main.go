// Command ingest-soak proves the crash-safety contract of streaming
// ingestion end to end, over a real TCP listener rather than an
// in-process handler call:
//
//  1. it trains a small simulated region and boots a server with
//     POST /ingest enabled,
//  2. streams a simulated taxi fleet through HTTP — one request per
//     trip, counting only fixes the server acknowledged with a 2xx
//     (every acknowledgement carries an fsync barrier),
//  3. crashes the server mid-fleet: the listener dies and the process
//     abandons the ingestion service without closing it, leaving an
//     unsealed WAL segment behind exactly as a kill -9 would,
//  4. recovers a fresh server over the same directories and verifies
//     zero acknowledged-fix loss against the replay statistics,
//  5. streams the rest of the fleet, compacts, and verifies the
//     published model answers /summarize.
//
// It exits 0 only when every invariant holds; `make ingest-soak` runs
// it in CI. See docs/ROBUSTNESS.md, "Ingestion durability".
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"stmaker"
	"stmaker/internal/geo"
	"stmaker/internal/hits"
	"stmaker/internal/ingest"
	"stmaker/internal/registry"
	"stmaker/internal/server"
	"stmaker/internal/simulate"
	"stmaker/internal/traj"
	"stmaker/internal/worldio"
)

const region = "soak"

func main() {
	var (
		trips   = flag.Int("trips", 48, "fleet size streamed through /ingest")
		keep    = flag.Bool("keep", false, "keep the work directory for inspection")
		verbose = flag.Bool("v", false, "log at info level instead of warn")
	)
	flag.Parse()

	level := slog.LevelWarn
	if *verbose {
		level = slog.LevelInfo
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	root, err := os.MkdirTemp("", "ingest-soak-*")
	if err != nil {
		fatal("work dir: %v", err)
	}
	if !*keep {
		defer os.RemoveAll(root)
	} else {
		fmt.Printf("work dir: %s\n", root)
	}
	if err := run(logger, root, *trips); err != nil {
		fatal("%v", err)
	}
	fmt.Println("ingest-soak: all invariants held")
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ingest-soak: FAIL: "+format+"\n", args...)
	os.Exit(1)
}

func run(logger *slog.Logger, root string, numTrips int) error {
	modelDir := filepath.Join(root, "models")
	ingestDir := filepath.Join(root, "ingest")

	city, err := writeRegion(modelDir)
	if err != nil {
		return fmt.Errorf("build region fixture: %w", err)
	}
	fleet := simulate.GenerateFleet(city, simulate.FleetOptions{
		NumTrips: numTrips, Seed: 7, FixedHour: -1, SampleInterval: 10 * time.Second,
	})
	if len(fleet) < 8 {
		return fmt.Errorf("fleet too small: %d trips", len(fleet))
	}

	// Phase 1: stream the first half of the fleet, finishing every trip
	// except the last, which is left open mid-trip — the crash must not
	// lose it.
	srv1, err := newServer(logger, modelDir, ingestDir)
	if err != nil {
		return fmt.Errorf("boot server: %w", err)
	}
	ts1 := httptest.NewServer(srv1)
	half := len(fleet) / 2
	var ackedFixes, ackedCloses int
	for i, tr := range fleet[:half] {
		open := i == half-1 // leave the last phase-1 trip unfinished
		fixes, closes, err := streamTrip(ts1.URL, tr.Raw, open)
		if err != nil {
			return fmt.Errorf("phase 1 trip %d: %w", i, err)
		}
		ackedFixes += fixes
		ackedCloses += closes
	}
	if ackedFixes == 0 {
		return fmt.Errorf("phase 1 acknowledged no fixes")
	}

	// Crash: kill the listener and abandon the ingestion service without
	// Close — the active WAL segment stays unsealed on disk, like a
	// kill -9. Every acknowledged fix is already fsynced.
	ts1.CloseClientConnections()
	ts1.Close()
	logger.Info("crashed mid-fleet", "acked_fixes", ackedFixes, "acked_closes", ackedCloses)

	// Phase 2: recover over the same directories.
	srv2, err := newServer(logger, modelDir, ingestDir)
	if err != nil {
		return fmt.Errorf("recovery boot: %w", err)
	}
	svc := srv2.Ingest()
	ing, err := svc.Ingester(region)
	if err != nil {
		return fmt.Errorf("recovered ingester: %w", err)
	}
	st := ing.Stats()
	logger.Info("recovered", "replay_records", st.Replay.Records,
		"skipped", st.Replay.SkippedEvents, "open_trips", st.OpenTrips,
		"trips_folded", st.TripsFolded)

	// The zero-acknowledged-loss invariant: every fix and close the
	// server acknowledged before the crash is present in the replay.
	if got, want := st.Replay.Records, ackedFixes+ackedCloses; got < want {
		return fmt.Errorf("replay recovered %d records, %d were acknowledged before the crash", got, want)
	}
	if st.Replay.SkippedEvents != 0 {
		return fmt.Errorf("replay skipped %d events; a graceful listener kill must not tear the log", st.Replay.SkippedEvents)
	}
	if st.OpenTrips == 0 {
		return fmt.Errorf("the trip left open at crash time did not survive replay")
	}
	if st.TripsFolded < ackedCloses {
		return fmt.Errorf("replay folded %d trips, %d closes were acknowledged", st.TripsFolded, ackedCloses)
	}

	// Stream the rest of the fleet against the recovered server and
	// compact: the accumulated trips must publish as a servable model.
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	for i, tr := range fleet[half:] {
		fixes, closes, err := streamTrip(ts2.URL, tr.Raw, false)
		if err != nil {
			return fmt.Errorf("phase 2 trip %d: %w", i, err)
		}
		ackedFixes += fixes
		ackedCloses += closes
	}
	if err := svc.CompactAll(); err != nil {
		return fmt.Errorf("compaction: %w", err)
	}
	st = ing.Stats()
	if st.CheckpointSeq == 0 {
		return fmt.Errorf("compaction did not advance the checkpoint")
	}

	// The published model serves: summarize one ingested trip over HTTP.
	if err := summarize(ts2.URL, fleet[0].Raw); err != nil {
		return fmt.Errorf("summarize after compaction: %w", err)
	}
	if err := svc.Close(); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	fmt.Printf("streamed %d trips (%d fixes, %d closes), 1 crash/recovery, %d trips folded, checkpoint seq %d\n",
		len(fleet), ackedFixes, ackedCloses, st.TripsFolded, st.CheckpointSeq)
	return nil
}

// writeRegion trains a small city and lays it down as modelDir/soak/
// with world, model and manifest — the multi-region on-disk layout.
func writeRegion(modelDir string) (*simulate.City, error) {
	city := simulate.NewCity(simulate.CityOptions{
		Rows: 6, Cols: 6, BlockMeters: 500,
		Origin: geo.Point{Lat: 39.80, Lng: 116.25}, Seed: 11,
	})
	checkins := simulate.GenerateCheckins(city.Landmarks, simulate.CheckinOptions{Seed: 12})
	city.Landmarks.InferSignificance(200, checkins, hits.Options{})
	s, err := stmaker.New(stmaker.Config{Graph: city.Graph, Landmarks: city.Landmarks})
	if err != nil {
		return nil, err
	}
	train := simulate.GenerateFleet(city, simulate.FleetOptions{
		NumTrips: 80, Seed: 13, FixedHour: -1, Calm: true,
	})
	corpus := make([]*traj.Raw, 0, len(train))
	for _, tr := range train {
		corpus = append(corpus, tr.Raw)
	}
	if _, err := s.Train(corpus); err != nil {
		return nil, err
	}
	sub := filepath.Join(modelDir, region)
	if err := os.MkdirAll(sub, 0o755); err != nil {
		return nil, err
	}
	wf, err := os.Create(filepath.Join(sub, "world.json"))
	if err != nil {
		return nil, err
	}
	if err := worldio.SaveWorld(wf, city.Graph, city.Landmarks); err != nil {
		wf.Close()
		return nil, err
	}
	if err := wf.Close(); err != nil {
		return nil, err
	}
	mf, err := os.Create(filepath.Join(sub, "model.stm"))
	if err != nil {
		return nil, err
	}
	if _, err := s.SaveModel(mf); err != nil {
		mf.Close()
		return nil, err
	}
	return city, mf.Close()
}

// newServer boots a multi-region server over the fixture with ingestion
// enabled. Compaction is manual (CompactAll) so the soak controls when
// it happens.
func newServer(logger *slog.Logger, modelDir, ingestDir string) (*server.Server, error) {
	reg, err := registry.Open(modelDir, registry.Options{Logger: logger})
	if err != nil {
		return nil, err
	}
	return server.NewMultiRegion(reg, server.Options{
		Logger: logger,
		Ingest: &ingest.ServiceOptions{
			Dir:             ingestDir,
			CompactInterval: time.Hour,
			Logger:          logger,
		},
	})
}

// streamTrip POSTs one trip as an NDJSON stream — every fix, then an
// end-of-trip line unless leaveOpen — and returns the acknowledged
// counts from the response.
func streamTrip(baseURL string, raw *traj.Raw, leaveOpen bool) (fixes, closes int, err error) {
	samples := raw.Samples
	if leaveOpen {
		samples = samples[:len(samples)/2+1]
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, s := range samples {
		line := map[string]any{
			"trip": raw.ID, "object": raw.Object,
			"lat": s.Pt.Lat, "lng": s.Pt.Lng, "t": s.T,
		}
		if err := enc.Encode(line); err != nil {
			return 0, 0, err
		}
	}
	if !leaveOpen {
		if err := enc.Encode(map[string]any{"trip": raw.ID, "end": true}); err != nil {
			return 0, 0, err
		}
	}
	resp, err := http.Post(baseURL+"/ingest?region="+region, "application/x-ndjson", &buf)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var ir server.IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		return 0, 0, fmt.Errorf("decode response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("status %d: %s", resp.StatusCode, ir.Error)
	}
	if ir.Accepted != len(samples) {
		return 0, 0, fmt.Errorf("accepted %d of %d fixes", ir.Accepted, len(samples))
	}
	return ir.Accepted, ir.Closed, nil
}

// summarize POSTs one trajectory to /summarize and demands a 200 with a
// non-empty summary.
func summarize(baseURL string, raw *traj.Raw) error {
	body, err := json.Marshal(server.SummarizeRequest{Trajectory: raw})
	if err != nil {
		return err
	}
	resp, err := http.Post(baseURL+"/summarize?region="+region, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("status %d: %s", resp.StatusCode, b)
	}
	var sr server.SummarizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return err
	}
	if sr.Text == "" {
		return fmt.Errorf("empty summary")
	}
	return nil
}
