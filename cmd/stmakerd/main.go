// Command stmakerd serves trajectory summarization over HTTP, the way the
// original STMaker demo system ran online. It loads a world and training
// corpus produced by cmd/trajgen, trains, and listens until SIGINT or
// SIGTERM, then drains in-flight requests and exits.
//
// Usage:
//
//	stmakerd -world world.json -train train.json [-addr :8080] [-pprof]
//	         [-log text|json] [-max-body N] [-max-inflight N]
//	         [-timeout D] [-drain D] [-no-sanitize] [-hmm] [-sp-cache N]
//
// Endpoints (see docs/API.md for the wire format and docs/ROBUSTNESS.md
// for the failure-mode contract):
//
//	POST /summarize[?k=N]  {"trajectory": {...traj.Raw JSON...}, "k": N}
//	GET  /healthz          liveness probe
//	GET  /readyz           readiness probe (503 while draining)
//	GET  /metrics          JSON snapshot of stage + request metrics
//	GET  /debug/pprof/*    Go profiling handlers (only with -pprof)
//
// Every request is logged as one structured line (log/slog) to stderr;
// -log json switches the log format for machine ingestion. Metric names
// are catalogued in docs/OBSERVABILITY.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"stmaker"
	"stmaker/internal/sanitize"
	"stmaker/internal/server"
	"stmaker/internal/worldio"
)

func main() {
	var (
		worldPath   = flag.String("world", "world.json", "world file from trajgen")
		trainPath   = flag.String("train", "train.json", "training corpus")
		addr        = flag.String("addr", ":8080", "listen address")
		pprofOn     = flag.Bool("pprof", false, "mount /debug/pprof/ profiling handlers")
		logFormat   = flag.String("log", "text", "log format: text or json")
		maxBody     = flag.Int64("max-body", server.DefaultMaxBodyBytes, "max request body bytes (413 beyond; <0 disables)")
		maxInflight = flag.Int("max-inflight", 256, "max concurrently-handled requests (503 beyond; 0 disables)")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request pipeline deadline (504 beyond; 0 disables)")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")
		noSanitize  = flag.Bool("no-sanitize", false, "disable input repair (sanitization) before calibration")
		useHMM      = flag.Bool("hmm", false, "use HMM (Viterbi) map matching for routing features")
		spCache     = flag.Int("sp-cache", 0, "shortest-path cache entries for HMM matching (0 default, <0 disables)")
	)
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "stmakerd: invalid -log value %q (want text or json)\n\n", *logFormat)
		flag.Usage()
		os.Exit(2)
	}
	logger := slog.New(handler)
	slog.SetDefault(logger)

	wf, err := os.Open(*worldPath)
	if err != nil {
		fatal(logger, err)
	}
	graph, lms, err := worldio.LoadWorld(wf)
	wf.Close()
	if err != nil {
		fatal(logger, err)
	}
	cfg := stmaker.Config{
		Graph:          graph,
		Landmarks:      lms,
		UseHMMMatching: *useHMM,
		SPCacheEntries: *spCache,
	}
	if !*noSanitize {
		cfg.Sanitize = &sanitize.Options{}
	}
	s, err := stmaker.New(cfg)
	if err != nil {
		fatal(logger, err)
	}
	tf, err := os.Open(*trainPath)
	if err != nil {
		fatal(logger, err)
	}
	corpus, err := worldio.LoadTrips(tf)
	tf.Close()
	if err != nil {
		fatal(logger, err)
	}
	stats, err := s.Train(corpus)
	if err != nil {
		fatal(logger, err)
	}
	srv, err := server.NewWithOptions(s, server.Options{
		Logger:         logger,
		EnablePprof:    *pprofOn,
		MaxBodyBytes:   *maxBody,
		MaxInFlight:    *maxInflight,
		RequestTimeout: *timeout,
	})
	if err != nil {
		fatal(logger, err)
	}
	logger.Info("stmakerd listening",
		"addr", *addr,
		"trained", stats.Calibrated,
		"skipped", stats.Skipped,
		"repaired", stats.Repaired,
		"repairs", stats.Repairs.Repairs(),
		"transitions", stats.Transitions,
		"sanitize", !*noSanitize,
		"hmm", *useHMM,
		"pprof", *pprofOn,
	)

	// SIGINT/SIGTERM cancels ctx; Serve then flips /readyz to 503,
	// drains in-flight requests for up to -drain, and returns.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.ListenAndServe(ctx, *addr, server.ServeOptions{DrainTimeout: *drain}); err != nil {
		fatal(logger, err)
	}
	logger.Info("stmakerd stopped")
}

func fatal(logger *slog.Logger, err error) {
	logger.Error("stmakerd failed", "error", err)
	os.Exit(1)
}
