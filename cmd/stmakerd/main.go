// Command stmakerd serves trajectory summarization over HTTP, the way the
// original STMaker demo system ran online. It loads a world and training
// corpus produced by cmd/trajgen, trains, and listens.
//
// Usage:
//
//	stmakerd -world world.json -train train.json [-addr :8080]
//
// Endpoints:
//
//	POST /summarize[?k=N]  {"trajectory": {...traj.Raw JSON...}, "k": N}
//	GET  /healthz
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"stmaker"
	"stmaker/internal/server"
	"stmaker/internal/worldio"
)

func main() {
	var (
		worldPath = flag.String("world", "world.json", "world file from trajgen")
		trainPath = flag.String("train", "train.json", "training corpus")
		addr      = flag.String("addr", ":8080", "listen address")
	)
	flag.Parse()

	wf, err := os.Open(*worldPath)
	if err != nil {
		fatal(err)
	}
	graph, lms, err := worldio.LoadWorld(wf)
	wf.Close()
	if err != nil {
		fatal(err)
	}
	s, err := stmaker.New(stmaker.Config{Graph: graph, Landmarks: lms})
	if err != nil {
		fatal(err)
	}
	tf, err := os.Open(*trainPath)
	if err != nil {
		fatal(err)
	}
	corpus, err := worldio.LoadTrips(tf)
	tf.Close()
	if err != nil {
		fatal(err)
	}
	stats, err := s.Train(corpus)
	if err != nil {
		fatal(err)
	}
	srv, err := server.New(s)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "stmakerd: trained on %d trajectories, listening on %s\n", stats.Calibrated, *addr)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stmakerd:", err)
	os.Exit(1)
}
