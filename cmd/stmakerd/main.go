// Command stmakerd serves trajectory summarization over HTTP, the way the
// original STMaker demo system ran online. It loads a world produced by
// cmd/trajgen, obtains a model — warm-starting from a saved model file
// when -model points at one, training from the -train corpus otherwise —
// and listens until SIGINT or SIGTERM, then drains in-flight requests and
// exits.
//
// Usage:
//
//	stmakerd -world world.json -train train.json [-addr :8080] [-pprof]
//	         [-model model.stm] [-save-model model.stm] [-admin]
//	         [-log text|json] [-max-body N] [-max-inflight N]
//	         [-timeout D] [-drain D] [-no-sanitize] [-hmm] [-sp-cache N]
//	         [-ingest-dir wal/ [-ingest-buffer N] [-ingest-compact D]]
//
//	stmakerd -model-dir models/ [-model-budget N] [-preload auto|none|all|r1,r2]
//	         [same serving flags as above]
//
// Endpoints (see docs/API.md for the wire format and docs/ROBUSTNESS.md
// for the failure-mode contract):
//
//	POST /summarize[?k=N][&region=R]  {"trajectory": {...traj.Raw JSON...}, "k": N, "region": "R"}
//	POST /ingest[?region=R]           NDJSON stream of GPS fixes (only with -ingest-dir)
//	GET  /healthz          liveness probe
//	GET  /readyz           readiness probe (503 while draining or model-less; ?verbose=1 for per-region JSON)
//	GET  /metrics          JSON snapshot of stage + request metrics
//	POST /admin/reload[?region=R]  trigger a live reload (only with -admin)
//	GET  /debug/pprof/*    Go profiling handlers (only with -pprof)
//
// Single-region model lifecycle: -model warm-starts from a file written
// by -save-model, skipping the initial training entirely; -save-model
// persists the model (atomically, via temp file + rename) after every
// successful training, initial or live. SIGHUP — or POST /admin/reload —
// re-reads the -train corpus from disk and retrains in the background,
// hot-swapping the new model in atomically on success; a failed rebuild
// is logged and counted (model_reload_failures_total) while the previous
// model keeps serving.
//
// Multi-region mode: -model-dir points at a directory whose
// subdirectories each hold one region's world and trained model (plus
// an optional region.json manifest — see docs/MULTI_REGION.md). Regions
// load lazily on first request and are evicted least-recently-used when
// -model-budget is exceeded; requests route by the region key in the
// request or by the spatial index over region bounding boxes. SIGHUP
// reloads the model file of every loaded region; POST
// /admin/reload?region=R reloads one. -model-dir is mutually exclusive
// with -world/-train/-model/-save-model.
//
// Every request is logged as one structured line (log/slog) to stderr;
// -log json switches the log format for machine ingestion. Metric names
// are catalogued in docs/OBSERVABILITY.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"stmaker"
	"stmaker/internal/ingest"
	"stmaker/internal/landmark"
	"stmaker/internal/metrics"
	"stmaker/internal/registry"
	"stmaker/internal/roadnet"
	"stmaker/internal/sanitize"
	"stmaker/internal/server"
	"stmaker/internal/worldio"
)

func main() {
	var (
		worldPath   = flag.String("world", "world.json", "world file from trajgen")
		trainPath   = flag.String("train", "train.json", "training corpus")
		modelPath   = flag.String("model", "", "warm-start from this saved model file instead of training")
		savePath    = flag.String("save-model", "", "persist the model here after every successful training")
		adminOn     = flag.Bool("admin", false, "mount POST /admin/reload (live retrain trigger)")
		addr        = flag.String("addr", ":8080", "listen address")
		pprofOn     = flag.Bool("pprof", false, "mount /debug/pprof/ profiling handlers")
		logFormat   = flag.String("log", "text", "log format: text or json")
		maxBody     = flag.Int64("max-body", server.DefaultMaxBodyBytes, "max request body bytes (413 beyond; <0 disables); the batch endpoint allows 16x")
		maxInflight = flag.Int("max-inflight", 256, "max concurrently-handled requests (503 beyond; 0 disables)")

		batchWorkers = flag.Int("batch-workers", 0, "worker pool size per POST /summarize/batch request (0 = GOMAXPROCS)")
		maxBatch     = flag.Int("max-batch", server.DefaultMaxBatchItems, "max items per batch request (413 beyond; <0 disables)")
		timeout      = flag.Duration("timeout", 30*time.Second, "per-request pipeline deadline (504 beyond; 0 disables)")
		drain        = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")
		noSanitize   = flag.Bool("no-sanitize", false, "disable input repair (sanitization) before calibration")
		useHMM       = flag.Bool("hmm", false, "use HMM (Viterbi) map matching for routing features")
		spCache      = flag.Int("sp-cache", 0, "shortest-path cache entries for HMM matching (0 default, <0 disables)")
		overlayK     = flag.Int("overlay-landmarks", 0, "ALT routing-overlay landmarks precomputed at train time (0 default, <0 disables)")
		modelDir     = flag.String("model-dir", "", "serve every region under this directory (multi-region mode)")
		modelBudget  = flag.Int64("model-budget", 0, "memory budget in bytes for loaded region models (LRU eviction beyond; 0 unlimited)")
		preload      = flag.String("preload", "auto", "regions to load at boot: auto (first loadable), none, all, or a comma-separated list")

		ingestDir     = flag.String("ingest-dir", "", "enable POST /ingest: per-region WAL directory for crash-safe streaming ingestion")
		ingestBuffer  = flag.Int("ingest-buffer", 0, "max buffered open-trip fixes per region before ingest sheds with 429 (0 default)")
		ingestCompact = flag.Duration("ingest-compact", time.Minute, "interval between incremental model compactions of ingested trips")
	)
	flag.Parse()

	// -model-dir switches the model lifecycle wholesale; mixing it with
	// the single-region source flags would silently ignore one of them.
	if *modelDir != "" {
		conflicting := map[string]bool{"world": true, "train": true, "model": true, "save-model": true}
		flag.Visit(func(f *flag.Flag) {
			if conflicting[f.Name] {
				fmt.Fprintf(os.Stderr, "stmakerd: -%s cannot be combined with -model-dir\n\n", f.Name)
				flag.Usage()
				os.Exit(2)
			}
		})
	}

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "stmakerd: invalid -log value %q (want text or json)\n\n", *logFormat)
		flag.Usage()
		os.Exit(2)
	}
	logger := slog.New(handler)
	slog.SetDefault(logger)

	// -ingest-dir mounts POST /ingest backed by a per-region write-ahead
	// log under the directory; replay recovery and periodic compaction are
	// handled by the ingest service the server constructs from these
	// options (see docs/ROBUSTNESS.md, "Ingestion durability").
	var ingestOpts *ingest.ServiceOptions
	if *ingestDir != "" {
		ingestOpts = &ingest.ServiceOptions{
			Dir:             *ingestDir,
			CompactInterval: *ingestCompact,
			BufferFixes:     *ingestBuffer,
			Logger:          logger,
		}
		if *noSanitize {
			// Match -no-sanitize's meaning for the ingest path: keep the
			// structural repairs (invalid samples would fail calibration)
			// but switch the heuristic ones off.
			ingestOpts.Sanitize = sanitize.Options{MaxSpeedKmh: -1, JitterEpsilonMeters: -1}
		}
	}

	if *modelDir != "" {
		serveMultiRegion(logger, multiConfig{
			dir:          *modelDir,
			budget:       *modelBudget,
			preload:      *preload,
			ingest:       ingestOpts,
			admin:        *adminOn,
			addr:         *addr,
			pprof:        *pprofOn,
			maxBody:      *maxBody,
			maxInflight:  *maxInflight,
			batchWorkers: *batchWorkers,
			maxBatch:     *maxBatch,
			timeout:      *timeout,
			drain:        *drain,
			sanitize:     !*noSanitize,
			hmm:          *useHMM,
			spCache:      *spCache,
			overlayK:     *overlayK,
		})
		return
	}

	wf, err := os.Open(*worldPath)
	if err != nil {
		fatal(logger, err)
	}
	graph, lms, err := worldio.LoadWorld(wf)
	wf.Close()
	if err != nil {
		fatal(logger, err)
	}
	cfg := stmaker.Config{
		Graph:            graph,
		Landmarks:        lms,
		UseHMMMatching:   *useHMM,
		SPCacheEntries:   *spCache,
		OverlayLandmarks: *overlayK,
	}
	if !*noSanitize {
		cfg.Sanitize = &sanitize.Options{}
	}
	s, err := stmaker.New(cfg)
	if err != nil {
		fatal(logger, err)
	}

	// retrain is the one training path, shared by the cold-start boot and
	// every live reload: it re-reads the corpus from disk — so dropping a
	// new -train file and sending SIGHUP picks it up — trains, and
	// persists the new model when -save-model is set.
	retrain := func() error {
		tf, err := os.Open(*trainPath)
		if err != nil {
			return err
		}
		corpus, err := worldio.LoadTrips(tf)
		tf.Close()
		if err != nil {
			return err
		}
		stats, err := s.Train(corpus)
		if err != nil {
			return err
		}
		logger.Info("trained",
			"version", s.Model().Version(),
			"trained", stats.Calibrated,
			"skipped", stats.Skipped,
			"repaired", stats.Repaired,
			"repairs", stats.Repairs.Repairs(),
			"transitions", stats.Transitions,
		)
		if *savePath != "" {
			if err := saveModel(s, *savePath); err != nil {
				// The new model is already serving; a persistence failure
				// only costs the next boot its warm start.
				logger.Warn("model save failed, warm start unavailable", "path", *savePath, "error", err)
			} else {
				logger.Info("model saved", "path", *savePath)
			}
		}
		return nil
	}

	warm := false
	if *modelPath != "" {
		m, err := stmaker.LoadModelFile(*modelPath)
		if err == nil {
			err = s.LoadModel(m)
		}
		if err != nil {
			logger.Error("warm start failed, falling back to training", "model", *modelPath, "error", err)
		} else {
			warm = true
			logger.Info("warm start",
				"model", *modelPath,
				"version", m.Version(),
				"transitions", m.NumTransitions(),
			)
		}
	}
	if !warm {
		if err := retrain(); err != nil {
			fatal(logger, err)
		}
	}

	srv, err := server.NewWithOptions(s, server.Options{
		Logger:         logger,
		EnablePprof:    *pprofOn,
		EnableAdmin:    *adminOn,
		MaxBodyBytes:   *maxBody,
		MaxInFlight:    *maxInflight,
		BatchWorkers:   *batchWorkers,
		MaxBatchItems:  *maxBatch,
		RequestTimeout: *timeout,
		Retrain:        retrain,
		Ingest:         ingestOpts,
	})
	if err != nil {
		fatal(logger, err)
	}
	logger.Info("stmakerd listening",
		"addr", *addr,
		"model_version", s.Model().Version(),
		"warm_start", warm,
		"sanitize", !*noSanitize,
		"hmm", *useHMM,
		"admin", *adminOn,
		"pprof", *pprofOn,
	)

	// SIGHUP triggers a live retrain (single-flight, background); the
	// serving model keeps answering until the replacement is published.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			srv.TriggerReload("sighup")
		}
	}()

	// SIGINT/SIGTERM cancels ctx; Serve then flips /readyz to 503,
	// drains in-flight requests for up to -drain, and returns.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if svc := srv.Ingest(); svc != nil {
		go svc.Run(ctx)
		defer closeIngest(logger, svc)
	}
	if err := srv.ListenAndServe(ctx, *addr, server.ServeOptions{DrainTimeout: *drain}); err != nil {
		fatal(logger, err)
	}
	logger.Info("stmakerd stopped")
}

// multiConfig carries the resolved flags of multi-region mode.
type multiConfig struct {
	dir          string
	budget       int64
	preload      string
	ingest       *ingest.ServiceOptions
	admin        bool
	addr         string
	pprof        bool
	maxBody      int64
	maxInflight  int
	batchWorkers int
	maxBatch     int
	timeout      time.Duration
	drain        time.Duration
	sanitize     bool
	hmm          bool
	spCache      int
	overlayK     int
}

// serveMultiRegion is the -model-dir serving path: discover regions,
// preload per -preload, and serve the registry until shutdown. Every
// region's summarizer is built with the same pipeline flags the
// single-region mode would use.
func serveMultiRegion(logger *slog.Logger, cfg multiConfig) {
	reg, err := registry.Open(cfg.dir, registry.Options{
		Logger:   logger,
		MaxBytes: cfg.budget,
		NewSummarizer: func(g *roadnet.Graph, lms *landmark.Set, mx *metrics.Registry) (*stmaker.Summarizer, error) {
			scfg := stmaker.Config{
				Graph:            g,
				Landmarks:        lms,
				Metrics:          mx,
				UseHMMMatching:   cfg.hmm,
				SPCacheEntries:   cfg.spCache,
				OverlayLandmarks: cfg.overlayK,
			}
			if cfg.sanitize {
				scfg.Sanitize = &sanitize.Options{}
			}
			return stmaker.New(scfg)
		},
	})
	if err != nil {
		fatal(logger, err)
	}
	logger.Info("regions discovered", "dir", cfg.dir, "regions", reg.Names())

	// Preload proves servability before the listener opens: a fleet whose
	// every region fails to load should crash-loop loudly at boot, not
	// 404 quietly at 3am. -preload none skips the proof deliberately
	// (readyz stays 503 until the first successful lazy load).
	switch cfg.preload {
	case "none":
	case "auto":
		name, err := reg.PreloadAny()
		if err != nil {
			fatal(logger, fmt.Errorf("no region is loadable: %w", err))
		}
		logger.Info("preloaded", "region", name)
	case "all":
		if err := reg.Preload(reg.Names()); err != nil {
			fatal(logger, err)
		}
	default:
		if err := reg.Preload(strings.Split(cfg.preload, ",")); err != nil {
			fatal(logger, err)
		}
	}

	srv, err := server.NewMultiRegion(reg, server.Options{
		Logger:         logger,
		EnablePprof:    cfg.pprof,
		EnableAdmin:    cfg.admin,
		MaxBodyBytes:   cfg.maxBody,
		MaxInFlight:    cfg.maxInflight,
		BatchWorkers:   cfg.batchWorkers,
		MaxBatchItems:  cfg.maxBatch,
		RequestTimeout: cfg.timeout,
		Ingest:         cfg.ingest,
	})
	if err != nil {
		fatal(logger, err)
	}
	logger.Info("stmakerd listening",
		"addr", cfg.addr,
		"mode", "multi-region",
		"regions", len(reg.Names()),
		"budget", cfg.budget,
		"sanitize", cfg.sanitize,
		"hmm", cfg.hmm,
		"admin", cfg.admin,
		"pprof", cfg.pprof,
	)

	// SIGHUP re-reads the model file of every loaded region — the
	// multi-region analogue of the single-region live retrain.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			n := reg.ReloadLoaded("sighup")
			logger.Info("sighup region reloads started", "count", n)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if svc := srv.Ingest(); svc != nil {
		go svc.Run(ctx)
		defer closeIngest(logger, svc)
	}
	if err := srv.ListenAndServe(ctx, cfg.addr, server.ServeOptions{DrainTimeout: cfg.drain}); err != nil {
		fatal(logger, err)
	}
	logger.Info("stmakerd stopped")
}

// closeIngest seals every region's WAL after the listener has drained;
// buffered open trips are rebuilt by the next boot's replay.
func closeIngest(logger *slog.Logger, svc *ingest.Service) {
	if err := svc.Close(); err != nil {
		logger.Warn("ingest close failed", "error", err)
	}
}

// saveModel persists the current model atomically: written to a temp
// file in the destination directory, synced, then renamed over the
// target, so a crash mid-write can never leave a truncated model file
// for the next boot to trip on.
func saveModel(s *stmaker.Summarizer, path string) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(f.Name())
	if _, err := s.SaveModel(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), path)
}

func fatal(logger *slog.Logger, err error) {
	logger.Error("stmakerd failed", "error", err)
	os.Exit(1)
}
