// Command stmakerd serves trajectory summarization over HTTP, the way the
// original STMaker demo system ran online. It loads a world and training
// corpus produced by cmd/trajgen, trains, and listens.
//
// Usage:
//
//	stmakerd -world world.json -train train.json [-addr :8080] [-pprof] [-log text|json]
//
// Endpoints (see docs/API.md for the wire format):
//
//	POST /summarize[?k=N]  {"trajectory": {...traj.Raw JSON...}, "k": N}
//	GET  /healthz
//	GET  /metrics          JSON snapshot of stage + request metrics
//	GET  /debug/pprof/*    Go profiling handlers (only with -pprof)
//
// Every request is logged as one structured line (log/slog) to stderr;
// -log json switches the log format for machine ingestion. Metric names
// are catalogued in docs/OBSERVABILITY.md.
package main

import (
	"flag"
	"log/slog"
	"net/http"
	"os"

	"stmaker"
	"stmaker/internal/server"
	"stmaker/internal/worldio"
)

func main() {
	var (
		worldPath = flag.String("world", "world.json", "world file from trajgen")
		trainPath = flag.String("train", "train.json", "training corpus")
		addr      = flag.String("addr", ":8080", "listen address")
		pprofOn   = flag.Bool("pprof", false, "mount /debug/pprof/ profiling handlers")
		logFormat = flag.String("log", "text", "log format: text or json")
	)
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		handler = slog.NewTextHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)
	slog.SetDefault(logger)

	wf, err := os.Open(*worldPath)
	if err != nil {
		fatal(logger, err)
	}
	graph, lms, err := worldio.LoadWorld(wf)
	wf.Close()
	if err != nil {
		fatal(logger, err)
	}
	s, err := stmaker.New(stmaker.Config{Graph: graph, Landmarks: lms})
	if err != nil {
		fatal(logger, err)
	}
	tf, err := os.Open(*trainPath)
	if err != nil {
		fatal(logger, err)
	}
	corpus, err := worldio.LoadTrips(tf)
	tf.Close()
	if err != nil {
		fatal(logger, err)
	}
	stats, err := s.Train(corpus)
	if err != nil {
		fatal(logger, err)
	}
	srv, err := server.NewWithOptions(s, server.Options{
		Logger:      logger,
		EnablePprof: *pprofOn,
	})
	if err != nil {
		fatal(logger, err)
	}
	logger.Info("stmakerd listening",
		"addr", *addr,
		"trained", stats.Calibrated,
		"skipped", stats.Skipped,
		"transitions", stats.Transitions,
		"pprof", *pprofOn,
	)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fatal(logger, err)
	}
}

func fatal(logger *slog.Logger, err error) {
	logger.Error("stmakerd failed", "error", err)
	os.Exit(1)
}
