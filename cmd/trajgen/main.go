// Command trajgen generates a synthetic world — a graded city road
// network, a landmark dataset with inferred significance, and taxi-fleet
// trajectory datasets — and writes them as JSON for cmd/stmaker.
//
// Usage:
//
//	trajgen [-rows 10] [-cols 10] [-train 400] [-test 100] [-seed 1] [-out .]
//	        [-origin lat,lng] [-fleet N]
//
// It writes world.json, train.json and test.json into the -out
// directory. -origin anchors the city's south-west corner (default
// central Beijing) — generate at distinct origins to build
// non-overlapping regions for stmakerd's multi-region mode
// (docs/MULTI_REGION.md).
//
// -fleet N additionally writes fleet.json — N live-traffic trips in
// the same trips format — as a serving workload for cmd/stmaker-load.
// The same seed reproduces the same workload bytes, so load runs are
// comparable across machines and commits (docs/PERFORMANCE.md,
// "Sustained throughput").
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"stmaker/internal/geo"
	"stmaker/internal/hits"
	"stmaker/internal/simulate"
	"stmaker/internal/traj"
	"stmaker/internal/worldio"
)

func main() {
	var (
		rows   = flag.Int("rows", 10, "city grid rows")
		cols   = flag.Int("cols", 10, "city grid columns")
		train  = flag.Int("train", 400, "training trips (calm traffic)")
		test   = flag.Int("test", 100, "test trips (live traffic with anomalies)")
		seed   = flag.Int64("seed", 1, "random seed")
		out    = flag.String("out", ".", "output directory")
		origin = flag.String("origin", "", "city south-west corner as lat,lng (default central Beijing)")
		fleet  = flag.Int("fleet", 0, "also write fleet.json: N serving-workload trips for cmd/stmaker-load")
	)
	flag.Parse()

	originPt, err := parseOrigin(*origin)
	if err != nil {
		fatal(err)
	}
	city := simulate.NewCity(simulate.CityOptions{Rows: *rows, Cols: *cols, Seed: *seed, Origin: originPt})
	visits := simulate.GenerateCheckins(city.Landmarks, simulate.CheckinOptions{Seed: *seed + 1})
	city.Landmarks.InferSignificance(200, visits, hits.Options{})

	trainFleet := simulate.GenerateFleet(city, simulate.FleetOptions{
		NumTrips: *train, Seed: *seed + 2, FixedHour: -1, Calm: true,
	})
	testFleet := simulate.GenerateFleet(city, simulate.FleetOptions{
		NumTrips: *test, Seed: *seed + 3, FixedHour: -1,
	})

	if err := writeWorld(filepath.Join(*out, "world.json"), city); err != nil {
		fatal(err)
	}
	if err := writeTrips(filepath.Join(*out, "train.json"), trainFleet); err != nil {
		fatal(err)
	}
	if err := writeTrips(filepath.Join(*out, "test.json"), testFleet); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote world.json (%d nodes, %d edges, %d landmarks), train.json (%d trips), test.json (%d trips) to %s\n",
		city.Graph.NumNodes(), city.Graph.NumEdges(), city.Landmarks.Len(),
		len(trainFleet), len(testFleet), *out)

	// The load workload uses a seed offset disjoint from train/test so
	// the served trips are never the trained-on trips.
	if *fleet > 0 {
		loadFleet := simulate.GenerateFleet(city, simulate.FleetOptions{
			NumTrips: *fleet, Seed: *seed + 4, FixedHour: -1,
		})
		if err := writeTrips(filepath.Join(*out, "fleet.json"), loadFleet); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote fleet.json (%d trips) for stmaker-load\n", len(loadFleet))
	}
}

func writeWorld(path string, city *simulate.City) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := worldio.SaveWorld(f, city.Graph, city.Landmarks); err != nil {
		return err
	}
	return f.Close()
}

func writeTrips(path string, fleet []*simulate.Trip) error {
	raws := make([]*traj.Raw, len(fleet))
	for i, tr := range fleet {
		raws[i] = tr.Raw
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := worldio.SaveTrips(f, raws); err != nil {
		return err
	}
	return f.Close()
}

// parseOrigin parses "-origin lat,lng" into a geo.Point. Empty input
// returns the zero point, which NewCity replaces with its default
// (central Beijing).
func parseOrigin(s string) (geo.Point, error) {
	if s == "" {
		return geo.Point{}, nil
	}
	lat, lng, ok := strings.Cut(s, ",")
	if !ok {
		return geo.Point{}, fmt.Errorf("invalid -origin %q: want lat,lng", s)
	}
	latF, err := strconv.ParseFloat(strings.TrimSpace(lat), 64)
	if err != nil {
		return geo.Point{}, fmt.Errorf("invalid -origin latitude %q: %v", lat, err)
	}
	lngF, err := strconv.ParseFloat(strings.TrimSpace(lng), 64)
	if err != nil {
		return geo.Point{}, fmt.Errorf("invalid -origin longitude %q: %v", lng, err)
	}
	p := geo.Point{Lat: latF, Lng: lngF}
	if !p.Valid() {
		return geo.Point{}, fmt.Errorf("invalid -origin %v: out of range", p)
	}
	return p, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trajgen:", err)
	os.Exit(1)
}
