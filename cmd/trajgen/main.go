// Command trajgen generates a synthetic world — a graded city road
// network, a landmark dataset with inferred significance, and taxi-fleet
// trajectory datasets — and writes them as JSON for cmd/stmaker.
//
// Usage:
//
//	trajgen [-rows 10] [-cols 10] [-train 400] [-test 100] [-seed 1] [-out .]
//
// It writes world.json, train.json and test.json into the -out directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"stmaker/internal/hits"
	"stmaker/internal/simulate"
	"stmaker/internal/traj"
	"stmaker/internal/worldio"
)

func main() {
	var (
		rows  = flag.Int("rows", 10, "city grid rows")
		cols  = flag.Int("cols", 10, "city grid columns")
		train = flag.Int("train", 400, "training trips (calm traffic)")
		test  = flag.Int("test", 100, "test trips (live traffic with anomalies)")
		seed  = flag.Int64("seed", 1, "random seed")
		out   = flag.String("out", ".", "output directory")
	)
	flag.Parse()

	city := simulate.NewCity(simulate.CityOptions{Rows: *rows, Cols: *cols, Seed: *seed})
	visits := simulate.GenerateCheckins(city.Landmarks, simulate.CheckinOptions{Seed: *seed + 1})
	city.Landmarks.InferSignificance(200, visits, hits.Options{})

	trainFleet := simulate.GenerateFleet(city, simulate.FleetOptions{
		NumTrips: *train, Seed: *seed + 2, FixedHour: -1, Calm: true,
	})
	testFleet := simulate.GenerateFleet(city, simulate.FleetOptions{
		NumTrips: *test, Seed: *seed + 3, FixedHour: -1,
	})

	if err := writeWorld(filepath.Join(*out, "world.json"), city); err != nil {
		fatal(err)
	}
	if err := writeTrips(filepath.Join(*out, "train.json"), trainFleet); err != nil {
		fatal(err)
	}
	if err := writeTrips(filepath.Join(*out, "test.json"), testFleet); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote world.json (%d nodes, %d edges, %d landmarks), train.json (%d trips), test.json (%d trips) to %s\n",
		city.Graph.NumNodes(), city.Graph.NumEdges(), city.Landmarks.Len(),
		len(trainFleet), len(testFleet), *out)
}

func writeWorld(path string, city *simulate.City) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := worldio.SaveWorld(f, city.Graph, city.Landmarks); err != nil {
		return err
	}
	return f.Close()
}

func writeTrips(path string, fleet []*simulate.Trip) error {
	raws := make([]*traj.Raw, len(fleet))
	for i, tr := range fleet {
		raws[i] = tr.Raw
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := worldio.SaveTrips(f, raws); err != nil {
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trajgen:", err)
	os.Exit(1)
}
