// Command stmaker-lint is the project-specific static checker behind
// `make lint`. It type-checks every package in the module with the
// standard library's go/types (no external dependencies) and enforces the
// invariants the compiler cannot see: metric-name hygiene against
// docs/OBSERVABILITY.md, (lat, lng) coordinate-order discipline,
// no exact floating-point comparison, context plumbing rules, and
// sync.Pool Get/Put pairing. See docs/STATIC_ANALYSIS.md.
//
// Exit status: 0 clean, 1 findings, 2 the module could not be loaded.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"stmaker/internal/lint"
)

func main() {
	docs := flag.String("docs", "docs/OBSERVABILITY.md",
		"metrics catalogue cross-checked by metricnames, relative to the module root; empty disables the doc check")
	checks := flag.String("checks", "",
		fmt.Sprintf("comma-separated subset of checks to run (default all: %s)", strings.Join(lint.AllChecks(), ",")))
	verbose := flag.Bool("v", false, "print per-run timing to stderr")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: stmaker-lint [flags] [module-root]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	root := flag.Arg(0)
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "stmaker-lint:", err)
			os.Exit(2)
		}
	}

	opts := lint.Options{}
	if *docs != "" {
		opts.DocPath = filepath.Join(root, *docs)
	}
	if *checks != "" {
		opts.Checks = strings.Split(*checks, ",")
	}

	t0 := time.Now()
	pkgs, err := lint.Load(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stmaker-lint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stmaker-lint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "stmaker-lint: %d package(s) in %v\n", len(pkgs), time.Since(t0).Round(time.Millisecond))
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "stmaker-lint: %d issue(s)\n", len(diags))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
