// Command stmaker-lint is the project-specific static checker behind
// `make lint`. It type-checks every package in the module with the
// standard library's go/types (no external dependencies) and enforces the
// invariants the compiler cannot see: metric-name hygiene against
// docs/OBSERVABILITY.md, (lat, lng) coordinate-order discipline,
// no exact floating-point comparison, context plumbing rules, sync.Pool
// Get/Put pairing, Model immutability (modelmut), pooled-scratch escape
// (poolescape), model-cell publish discipline (atomiccell), and the
// sentinel-error/status taxonomy against docs/API.md (statusmap). See
// docs/STATIC_ANALYSIS.md.
//
// Exit status: 0 clean, 1 findings, 2 the module could not be loaded.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"stmaker/internal/lint"
)

// jsonFinding is the machine-readable shape of one diagnostic, consumed
// by CI tooling (`stmaker-lint -json`).
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func main() {
	docs := flag.String("docs", "docs/OBSERVABILITY.md",
		"metrics catalogue cross-checked by metricnames, relative to the module root; empty disables the doc check")
	apiDocs := flag.String("api-docs", "docs/API.md",
		"API reference whose status rows statusmap cross-checks, relative to the module root; empty disables the check")
	checks := flag.String("checks", "",
		fmt.Sprintf("comma-separated subset of checks to run (default all: %s)", strings.Join(lint.AllChecks(), ",")))
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout instead of text lines")
	verbose := flag.Bool("v", false, "print load and per-check timing to stderr")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: stmaker-lint [flags] [module-root]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	root := flag.Arg(0)
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "stmaker-lint:", err)
			os.Exit(2)
		}
	}

	opts := lint.Options{}
	if *docs != "" {
		opts.DocPath = filepath.Join(root, *docs)
	}
	if *apiDocs != "" {
		opts.APIDocPath = filepath.Join(root, *apiDocs)
	}
	if *checks != "" {
		opts.Checks = strings.Split(*checks, ",")
	}

	t0 := time.Now()
	pkgs, err := lint.Load(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stmaker-lint:", err)
		os.Exit(2)
	}
	loadTime := time.Since(t0)
	diags, timings, err := lint.RunTimed(pkgs, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stmaker-lint:", err)
		os.Exit(2)
	}
	if *jsonOut {
		findings := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, jsonFinding{
				File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column,
				Check: d.Check, Message: d.Msg,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "stmaker-lint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "stmaker-lint: loaded %d package(s) in %v\n", len(pkgs), loadTime.Round(time.Millisecond))
		for _, ct := range timings {
			fmt.Fprintf(os.Stderr, "stmaker-lint: check %-12s %v\n", ct.Name, ct.Duration.Round(time.Millisecond))
		}
		fmt.Fprintf(os.Stderr, "stmaker-lint: total %v\n", time.Since(t0).Round(time.Millisecond))
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "stmaker-lint: %d issue(s)\n", len(diags))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
