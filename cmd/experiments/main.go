// Command experiments regenerates every table and figure of the paper's
// evaluation (§VII) on the simulated world and prints the series the paper
// reports. Use -run to select a single experiment and the sizing flags to
// scale toward the paper's dataset sizes.
//
// Usage:
//
//	experiments [-rows 10] [-cols 10] [-train 400] [-test 600] [-seed 1]
//	            [-run all|case|compression|fig8|fig9|fig10a|fig10b|fig11|fig12a|fig12b|matcher]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"stmaker/internal/experiments"
)

func main() {
	var (
		rows  = flag.Int("rows", 10, "city grid rows")
		cols  = flag.Int("cols", 10, "city grid columns")
		train = flag.Int("train", 400, "training trips")
		test  = flag.Int("test", 600, "test trips")
		seed  = flag.Int64("seed", 1, "random seed")
		spec  = flag.Bool("spec", false, "register the SpeC extension feature (Fig. 10b's 7-feature setup)")
		run   = flag.String("run", "all", "experiment to run")
	)
	flag.Parse()

	start := time.Now()
	w, err := experiments.NewWorld(experiments.Options{
		CityRows: *rows, CityCols: *cols,
		TrainTrips: *train, TestTrips: *test, Seed: *seed,
		IncludeSpeC: *spec,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Printf("world: %dx%d city, %d landmarks, %d train / %d test trips (built in %v)\n\n",
		*rows, *cols, w.City.Landmarks.Len(), len(w.Train), len(w.Test), time.Since(start).Round(time.Millisecond))

	sel := func(name string) bool { return *run == "all" || *run == name }
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	if sel("case") {
		res, err := experiments.CaseStudy(w, 3)
		if err != nil {
			fail(err)
		}
		res.Format(os.Stdout)
		fmt.Println()
	}
	if sel("compression") {
		res, err := experiments.CompressionStudy(w, 200)
		if err != nil {
			fail(err)
		}
		res.Format(os.Stdout)
		fmt.Println()
	}
	if sel("fig8") {
		res, err := experiments.FeatureFrequencyByTime(w)
		if err != nil {
			fail(err)
		}
		res.Format(os.Stdout)
		fmt.Println()
	}
	if sel("fig9") {
		res, err := experiments.LandmarkUsageBySignificance(w)
		if err != nil {
			fail(err)
		}
		res.Format(os.Stdout)
		fmt.Println()
	}
	if sel("fig10a") {
		res, err := experiments.FeatureWeightSweep(w, []float64{0.5, 1, 2, 3, 4}, 200)
		if err != nil {
			fail(err)
		}
		res.Format(os.Stdout)
		fmt.Println()
	}
	if sel("fig10b") {
		res, err := experiments.PartitionSizeSweep(w, []int{1, 2, 3, 4, 5, 6, 7}, 200)
		if err != nil {
			fail(err)
		}
		res.Format(os.Stdout)
		fmt.Println()
	}
	if sel("fig11") {
		res, err := experiments.UserStudy(w, 450)
		if err != nil {
			fail(err)
		}
		res.Format(os.Stdout)
		fmt.Println()
	}
	if sel("fig12a") {
		res, err := experiments.TimingByTrajectorySize(w, 3)
		if err != nil {
			fail(err)
		}
		res.Format(os.Stdout)
		fmt.Println()
	}
	if sel("fig12b") {
		res, err := experiments.TimingByPartitionSize(w, []int{1, 2, 3, 4, 5, 6, 7}, 100)
		if err != nil {
			fail(err)
		}
		res.Format(os.Stdout)
		fmt.Println()
	}
	if sel("matcher") {
		res, err := experiments.MatcherAccuracy(w, 100, 25)
		if err != nil {
			fail(err)
		}
		res.Format(os.Stdout)
		fmt.Println()
	}
}
